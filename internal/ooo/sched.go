package ooo

import (
	"container/heap"
	"sort"

	"prisim/internal/core"
	"prisim/internal/emu"
)

// readyHeap orders selectable instructions oldest first.
type readyHeap []*dynInst

func (h readyHeap) Len() int           { return len(h) }
func (h readyHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h readyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)        { *h = append(*h, x.(*dynInst)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return d
}

// schedule is the Sched stage: select up to Width ready instructions,
// oldest first, subject to functional unit availability. Scheduling is
// speculative: dependents are woken assuming nominal latencies and repaired
// by replay if a load misses.
//
// A scheduler entry is freed at select; an instruction that replays
// re-enters its entry (re-entry is never blocked, mirroring designs that
// reserve issued entries until latency confirmation).
func (p *Pipeline) schedule() {
	issued := 0
	var stash []*dynInst
	for issued < p.cfg.Width && p.readyQ.Len() > 0 {
		d := heap.Pop(&p.readyQ).(*dynInst)
		if d.squashed || d.issued || !d.inSched {
			continue
		}
		// Queue stage: an instruction renamed at cycle t is selectable at
		// t+2 (Rename | Queue | Sched).
		if d.renameCycle+2 > p.now {
			stash = append(stash, d)
			continue
		}
		cl := d.inst.Op.Class()
		unit := -1
		for u, busyUntil := range p.fu[cl] {
			if busyUntil <= p.now {
				unit = u
				break
			}
		}
		if unit < 0 {
			stash = append(stash, d)
			continue
		}
		if d.inst.Op.Unpipelined() {
			p.fu[cl][unit] = p.now + uint64(p.specLatency(d))
		} else {
			p.fu[cl][unit] = p.now + 1
		}
		d.issued = true
		p.schedCount--
		issued++
		d.execStart = p.now + uint64(p.cfg.SchedToExec)
		p.post(d.execStart, event{kind: evExecStart, inst: d})
		// Speculative wakeup at select + nominal latency.
		wakeAt := p.now + uint64(p.specLatency(d))
		for _, w := range d.waiters {
			p.post(wakeAt, event{kind: evWake, inst: w.inst, srcIdx: w.srcIdx})
		}
		d.waiters = d.waiters[:0]
	}
	for _, d := range stash {
		heap.Push(&p.readyQ, d)
	}
}

// specLatency is the scheduler's assumed latency: the opcode latency, plus
// the first-level hit time for loads.
func (p *Pipeline) specLatency(d *dynInst) int {
	lat := d.inst.Op.Latency()
	if d.inst.Op.IsLoad() {
		lat += p.mem.DL1Latency()
	}
	return lat
}

func (p *Pipeline) schedInsert(d *dynInst) {
	d.inSched = true
	d.issued = false
	p.schedCount++
	d.notReady = 0
	for i := 0; i < d.nsrc; i++ {
		if !d.srcs[i].ready {
			d.notReady++
		}
	}
	if d.notReady == 0 {
		heap.Push(&p.readyQ, d)
	}
}

// linkOperand decides how a renamed PR operand learns of its readiness.
func (p *Pipeline) linkOperand(d *dynInst, i int, producer *dynInst) {
	s := &d.srcs[i]
	switch {
	case producer == nil || producer.completed:
		s.ready = true
	case producer.executed:
		if producer.readyCycle <= p.now {
			s.ready = true
		} else {
			p.post(producer.readyCycle, event{kind: evWake, inst: d, srcIdx: i})
		}
	case producer.issued:
		wakeAt := producer.execStart - uint64(p.cfg.SchedToExec) + uint64(p.specLatency(producer))
		if wakeAt <= p.now {
			s.ready = true
		} else {
			p.post(wakeAt, event{kind: evWake, inst: d, srcIdx: i})
		}
	default:
		producer.addWaiter(waiter{d, i})
	}
}

func (p *Pipeline) post(cycle uint64, ev event) {
	if cycle <= p.now {
		cycle = p.now + 1
	}
	p.events[cycle] = append(p.events[cycle], ev)
}

func (p *Pipeline) processEvents() {
	evs, ok := p.events[p.now]
	if !ok {
		return
	}
	delete(p.events, p.now)
	// Deterministic order: oldest instruction first; for one instruction,
	// wake before exec before complete before retire would be stage order,
	// but kinds never collide for a single instruction in one cycle, so
	// sequence order alone suffices.
	sort.SliceStable(evs, func(i, j int) bool {
		return evs[i].inst.seq < evs[j].inst.seq
	})
	for _, ev := range evs {
		if ev.inst.squashed {
			continue
		}
		switch ev.kind {
		case evWake:
			if ev.srcIdx < 0 {
				p.wakeMem(ev.inst)
			} else {
				p.wake(ev.inst, ev.srcIdx)
			}
		case evExecStart:
			p.execStart(ev.inst)
		case evComplete:
			p.complete(ev.inst)
		case evRetire:
			p.retire(ev.inst)
		}
	}
}

func (p *Pipeline) wake(d *dynInst, i int) {
	s := &d.srcs[i]
	if s.ready {
		return
	}
	s.ready = true
	p.operandBecameReady(d)
}

// wakeMem clears a load's memory-ordering wait.
func (p *Pipeline) wakeMem(d *dynInst) {
	if !d.memWait {
		return
	}
	d.memWait = false
	p.operandBecameReady(d)
}

func (p *Pipeline) operandBecameReady(d *dynInst) {
	d.notReady--
	if d.notReady < 0 {
		panicf("ooo: %v notReady underflow", d)
	}
	if d.notReady == 0 && d.inSched && !d.issued && !d.squashed {
		heap.Push(&p.readyQ, d)
	}
}

// execStart is the execute check at the end of the Disp/RF stages: with
// speculative scheduling, operands that were woken speculatively may not
// actually be there (a producing load missed). Such instructions replay.
func (p *Pipeline) execStart(d *dynInst) {
	if !d.issued || d.executed {
		return
	}
	replayNeeded := false
	for i := 0; i < d.nsrc; i++ {
		s := &d.srcs[i]
		if s.op.Kind != core.OperandPR || s.released {
			continue
		}
		if s.producer != nil && !s.producer.resultAvailableBy(p.now) {
			replayNeeded = true
			s.ready = false
			p.relinkForReplay(d, i)
		}
	}
	if replayNeeded {
		p.replay(d)
		return
	}
	// Loads: memory ordering against older stores in the LSQ.
	if d.inst.Op.IsLoad() {
		if blocker := p.loadBlocker(d); blocker != nil {
			d.memWait = true
			blocker.addWaiter(waiter{d, -1})
			p.stats.LoadConflictReplays++
			p.replay(d)
			return
		}
	}

	// Operands are read here (register read / bypass): release reader
	// references so PRI's reference-counted frees can drain.
	for i := 0; i < d.nsrc; i++ {
		p.releaseSrc(d, i, true)
	}
	d.executed = true
	d.inSched = false

	lat := p.actualLatency(d)
	d.readyCycle = p.now + uint64(lat)
	p.post(d.readyCycle, event{kind: evComplete, inst: d})
	// Anyone who registered while this instruction was in flight (replay
	// paths, blocked loads) is woken at true readiness. Memory waiters on
	// a store can go as soon as the address is generated (next cycle).
	for _, w := range d.waiters {
		if w.srcIdx < 0 {
			p.post(p.now+1, event{kind: evWake, inst: w.inst, srcIdx: -1})
		} else {
			p.post(d.readyCycle, event{kind: evWake, inst: w.inst, srcIdx: w.srcIdx})
		}
	}
	d.waiters = d.waiters[:0]
}

// relinkForReplay re-arms operand i's wakeup for the producer's actual
// completion.
func (p *Pipeline) relinkForReplay(d *dynInst, i int) {
	producer := d.srcs[i].producer
	switch {
	case producer == nil || producer.completed:
		d.srcs[i].ready = true
	case producer.executed:
		p.post(producer.readyCycle, event{kind: evWake, inst: d, srcIdx: i})
	default:
		// The producer itself replayed; wait for its next issue.
		producer.addWaiter(waiter{d, i})
	}
}

func (p *Pipeline) replay(d *dynInst) {
	d.issued = false
	d.replays++
	p.stats.Replays++
	p.schedCount++
	d.notReady = 0
	for i := 0; i < d.nsrc; i++ {
		if !d.srcs[i].ready {
			d.notReady++
		}
	}
	if d.memWait {
		d.notReady++
	}
	if d.notReady == 0 {
		heap.Push(&p.readyQ, d)
	}
}

// loadBlocker returns an older store the load must wait for, or nil if the
// load may proceed. With oracle disambiguation (the default) a load waits
// only for the youngest overlapping store that has not yet executed; the
// conservative mode waits for any older store with an unresolved address.
func (p *Pipeline) loadBlocker(d *dynInst) *dynInst {
	for idx := len(p.lsq) - 1; idx >= p.lsqHead; idx-- {
		s := p.lsq[idx]
		if s.seq >= d.seq || !s.inst.Op.IsStore() {
			continue
		}
		if p.cfg.ConservativeDisambiguation && !s.executed {
			return s
		}
		if overlaps(&s.info, &d.info) {
			if !s.executed {
				return s
			}
			return nil // forwarded from the closest matching store
		}
	}
	return nil
}

// forwardedFrom reports whether an executed older store overlaps the load
// (store-to-load forwarding: the access never goes to the cache).
func (p *Pipeline) forwardedFrom(d *dynInst) bool {
	for idx := len(p.lsq) - 1; idx >= p.lsqHead; idx-- {
		s := p.lsq[idx]
		if s.seq >= d.seq || !s.inst.Op.IsStore() {
			continue
		}
		if overlaps(&s.info, &d.info) {
			return true
		}
	}
	return false
}

func overlaps(a, b *emu.StepInfo) bool {
	return a.MemAddr < b.MemAddr+uint64(b.MemSize) && b.MemAddr < a.MemAddr+uint64(a.MemSize)
}

// actualLatency resolves the instruction's true execution latency, probing
// the data cache for loads.
func (p *Pipeline) actualLatency(d *dynInst) int {
	op := d.inst.Op
	switch {
	case op.IsLoad():
		if p.forwardedFrom(d) {
			p.stats.LoadForwards++
			return 1 + p.mem.DL1Latency()
		}
		return 1 + p.mem.DataAt(d.info.MemAddr, false, p.now)
	case op.IsStore():
		return 1 // address generation; the write happens at commit
	default:
		return op.Latency()
	}
}

// complete marks the result available and resolves control instructions.
func (p *Pipeline) complete(d *dynInst) {
	d.completed = true
	d.completeCycle = p.now
	if d.isCtrl && !d.resolved {
		d.resolved = true
		p.stats.BranchResolved++
		if d.mispredict {
			p.stats.BranchMispredicted++
			p.recover(d)
		}
	}
	p.post(p.now+1, event{kind: evRetire, inst: d})
}

// retire is the writeback stage: the result reaches the register file and
// the PRI narrowness/inline logic runs.
//
// Under DelayedAllocation, writeback is where the physical register is
// actually bound, so it stalls while every physical register holds a live
// value — except for the ROB head, which owns the reserved register that
// guarantees forward progress.
func (p *Pipeline) retire(d *dynInst) {
	if p.cfg.DelayedAllocation && d.hasDest && d.alloc.PR >= 0 && p.robPeek() != d {
		// PRI composition: the significance and WAW checks run in the same
		// writeback stage as binding, so a result that will inline into
		// the map (and therefore never occupy a register) skips the gate.
		if !p.ren.WouldInline(d.alloc, d.info.Result) {
			fp := d.alloc.Arch.IsFP()
			cap := p.cfg.Rename.IntPRs
			if fp {
				cap = p.cfg.Rename.FPPRs
			}
			if p.ren.WrittenLive(fp) >= cap {
				p.stats.WritebackStalls++
				p.post(p.now+1, event{kind: evRetire, inst: d})
				return
			}
		}
	}
	d.retired = true
	if d.hasDest {
		p.stats.RetireLagSum += p.renameCursor - d.seq
		p.stats.RetireLagCount++
	}
	if d.hasDest {
		out := p.ren.WriteResult(d.alloc, d.info.Result, p.now)
		if out.Inlined {
			p.stats.RetireInlines++
		}
		if out.Freed {
			p.stats.EarlyFreesAtRetire++
		}
	}
}
