package ooo

import (
	"fmt"

	"prisim/internal/bpred"
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
)

func panicf(format string, args ...any) { panic(fmt.Sprintf(format, args...)) }

// srcOperand is one renamed source operand as held in the payload RAM.
type srcOperand struct {
	op core.Operand
	//prisim:genlink
	producer *dynInst // in-flight producer, nil when the value is at rest
	pgen     uint32   // producer's generation when the link was made
	ready    bool     // wakeup received (possibly speculative)
	released bool     // reader reference returned to the renamer
}

// producerLive reports whether the operand's producer link still points at
// the producing instruction. A generation mismatch means the producer left
// the pipeline and was recycled — which, since readers are always younger
// than their producer, can only mean it committed and the value is at rest.
//
//prisim:genguard
func (s *srcOperand) producerLive() bool {
	return s.producer != nil && s.producer.gen == s.pgen
}

// waiter links a scheduler entry to the producer it waits on. srcIdx is the
// operand index, or -1 for a load waiting on an older store. gen detects
// waiters that were squashed and recycled before the producer fired; seq is
// the waiting instruction's sequence number frozen at registration, so wake
// events can be ordered without dereferencing a possibly-recycled inst.
type waiter struct {
	//prisim:genlink
	inst   *dynInst
	gen    uint32
	seq    uint64
	srcIdx int
}

// dynInst is one in-flight dynamic instruction. Instances are owned by the
// Pipeline's free list: commit and squash recycle them, bumping gen so that
// any reference that outlives the instruction (a queued event, a producer's
// waiter entry, a ready-queue entry, a consumer's producer link) is
// detectably stale — the software twin of the paper's stale-physical-register
// hazard.
type dynInst struct {
	seq  uint64 // emulator sequence number (1-based)
	gen  uint32 // recycling generation; bumped when returned to the free list
	pc   uint64
	inst isa.Inst
	info emu.StepInfo // functional outcome

	// Control flow.
	isCtrl     bool
	pred       bpred.Prediction
	predNPC    uint64
	mispredict bool
	ckpt       *core.Checkpoint
	resolved   bool

	// Rename.
	srcs    [3]srcOperand
	nsrc    int
	hasDest bool
	alloc   core.Allocation

	// Scheduler state.
	inROB     bool
	inSched   bool
	issued    bool
	executed  bool // passed the execute check; completion scheduled
	completed bool // result available (end of Exe)
	retired   bool // written back (PRI ran)
	squashed  bool
	replays   int
	notReady  int // operands (and memory orderings) still awaited
	waiters   []waiter

	// Memory.
	inLSQ   bool
	memWait bool // counted one notReady unit for a store conflict

	// Timing.
	fetchCycle    uint64
	renameCycle   uint64
	execStart     uint64
	readyCycle    uint64 // cycle the result is bypass-available
	completeCycle uint64
}

func (d *dynInst) String() string {
	return fmt.Sprintf("#%d @%#x %s", d.seq, d.pc, d.inst)
}

// resultAvailableBy reports whether the instruction's result can feed a
// consumer that begins executing at cycle t.
func (d *dynInst) resultAvailableBy(t uint64) bool {
	return d.completed || (d.executed && d.readyCycle <= t)
}

// addWaiter registers a scheduler-resident consumer to be woken by this
// instruction.
func (d *dynInst) addWaiter(w waiter) { d.waiters = append(d.waiters, w) }

// newInst takes an instruction from the free list (or allocates one on a
// cold start). All fields are zero except gen and the retained waiters
// capacity.
//
//prisim:hotpath
func (p *Pipeline) newInst() *dynInst {
	if n := len(p.freeInsts); n > 0 {
		d := p.freeInsts[n-1]
		p.freeInsts[n-1] = nil
		p.freeInsts = p.freeInsts[:n-1]
		return d
	}
	//lint:ignore hotpathalloc cold start only: the pool reaches steady state after ROB-size allocations and this branch never runs again
	return new(dynInst)
}

// recycle returns an instruction that has left the pipeline (committed or
// squashed) to the free list. The caller must have removed it from every
// structural slot (ROB, LSQ, fetch ring, producer table); references in
// queued events, waiter lists, and the ready queue may remain — the
// generation bump renders them inert.
//
//prisim:hotpath
func (p *Pipeline) recycle(d *dynInst) {
	g := d.gen + 1
	w := d.waiters[:0]
	*d = dynInst{gen: g, waiters: w}
	p.freeInsts = append(p.freeInsts, d)
}
