package ooo

import (
	"fmt"

	"prisim/internal/bpred"
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
)

func panicf(format string, args ...any) { panic(fmt.Sprintf(format, args...)) }

// noSlot is the nil value of a slab slot index: no instruction.
const noSlot int32 = -1

// srcOperand is one renamed source operand as held in the payload RAM.
type srcOperand struct {
	op core.Operand
	//prisim:genlink
	producer int32  // slab slot of the in-flight producer, noSlot when the value is at rest
	pgen     uint32 // producer's generation when the link was made
	ready    bool   // wakeup received (possibly speculative)
	released bool   // reader reference returned to the renamer
}

// producerLive reports whether the operand's producer link still points at
// the producing instruction. A generation mismatch means the producer left
// the pipeline and its slot was recycled — which, since readers are always
// younger than their producer, can only mean it committed and the value is
// at rest.
//
//prisim:genguard
func (p *Pipeline) producerLive(s *srcOperand) bool {
	return s.producer != noSlot && p.slab.gen[s.producer] == s.pgen
}

// waiter links a scheduler entry to the producer it waits on. srcIdx is the
// operand index, or -1 for a load waiting on an older store. gen detects
// waiters that were squashed and recycled before the producer fired; seq is
// the waiting instruction's sequence number frozen at registration, so wake
// events can be ordered without touching a possibly-recycled slot.
type waiter struct {
	//prisim:genlink
	inst   int32
	gen    uint32
	srcIdx int32
	seq    uint64
}

// instFlag packs every per-instruction status boolean into one word, so the
// event loop's liveness and stage checks are single loads from the hot slab
// instead of scattered struct bytes.
type instFlag uint32

const (
	fIsCtrl instFlag = 1 << iota
	fMispredict
	fResolved
	fHasDest
	fInROB
	fInLSQ
	fInSched
	fIssued
	fExecuted  // passed the execute check; completion scheduled
	fCompleted // result available (end of Exe)
	fRetired   // written back (PRI ran)
	fSquashed
	fMemWait // counted one notReady unit for a store conflict
)

// instData is the cold per-instruction state: everything a dynamic
// instruction carries that the per-cycle event loop does not touch on its
// liveness checks. It lives in one array-of-structs slab parallel to the hot
// arrays, indexed by the same slot.
type instData struct {
	pc   uint64
	uop  isa.Uop      // decoded static instruction + scheduling metadata (by value; cache pointers are not retained)
	info emu.StepInfo // functional outcome

	// Control flow.
	pred    bpred.Prediction
	predNPC uint64
	ckpt    *core.Checkpoint

	// Rename.
	srcs  [3]srcOperand
	alloc core.Allocation

	waiters []waiter

	// Timing.
	fetchCycle  uint64
	renameCycle uint64
	execStart   uint64
}

// instSlab is the struct-of-arrays home of all in-flight instruction state.
// The hot fields — generation, sequence, status flags, outstanding-operand
// count, and the two result timestamps — live in parallel arrays indexed by
// pool slot, so the event loop's stale-check (gen compare) and wake path read
// small contiguous words instead of pulling whole 300-byte structs through
// the cache. Slots are owned by the free list: commit and squash recycle
// them, bumping gen so that any reference that outlives the instruction (a
// queued event, a producer's waiter entry, a ready-queue entry, a consumer's
// producer link) is detectably stale — the software twin of the paper's
// stale-physical-register hazard.
type instSlab struct {
	gen           []uint32
	seq           []uint64 // emulator sequence number (1-based)
	flags         []instFlag
	notReady      []int32 // operands (and memory orderings) still awaited
	readyCycle    []uint64
	completeCycle []uint64
	data          []instData
	free          []int32
}

// grow adds one slot to every parallel array.
func (sl *instSlab) grow() int32 {
	s := int32(len(sl.gen))
	sl.gen = append(sl.gen, 0)
	sl.seq = append(sl.seq, 0)
	sl.flags = append(sl.flags, 0)
	sl.notReady = append(sl.notReady, 0)
	sl.readyCycle = append(sl.readyCycle, 0)
	sl.completeCycle = append(sl.completeCycle, 0)
	sl.data = append(sl.data, instData{})
	return s
}

// instString renders a slot for diagnostics (panics, the watchdog).
func (p *Pipeline) instString(s int32) string {
	if s == noSlot {
		return "<none>"
	}
	d := &p.slab.data[s]
	return fmt.Sprintf("#%d @%#x %s", p.slab.seq[s], d.pc, d.uop.Inst)
}

// resultAvailableBy reports whether slot s's result can feed a consumer that
// begins executing at cycle t.
//
//prisim:hotpath
func (p *Pipeline) resultAvailableBy(s int32, t uint64) bool {
	f := p.slab.flags[s]
	return f&fCompleted != 0 || (f&fExecuted != 0 && p.slab.readyCycle[s] <= t)
}

// addWaiter registers a scheduler-resident consumer to be woken by slot s.
func (p *Pipeline) addWaiter(s int32, w waiter) {
	d := &p.slab.data[s]
	d.waiters = append(d.waiters, w)
}

// newInst takes a slot from the free list (or grows the slab on a cold
// start). Hot-array fields are zero except gen; cold data is zero except the
// retained waiters capacity.
//
//prisim:hotpath
func (p *Pipeline) newInst() int32 {
	if n := len(p.slab.free); n > 0 {
		s := p.slab.free[n-1]
		p.slab.free = p.slab.free[:n-1]
		return s
	}
	//lint:ignore hotpathalloc cold start only: the slab reaches steady state after ROB-size growths and this branch never runs again
	return p.slab.grow()
}

// recycle returns a slot that has left the pipeline (committed or squashed)
// to the free list. The caller must have removed it from every structural
// slot (ROB, LSQ, fetch ring, producer table); references in queued events,
// waiter lists, and the ready queue may remain — the generation bump renders
// them inert.
//
//prisim:hotpath
func (p *Pipeline) recycle(s int32) {
	sl := &p.slab
	sl.gen[s]++
	sl.seq[s] = 0
	sl.flags[s] = 0
	sl.notReady[s] = 0
	sl.readyCycle[s] = 0
	sl.completeCycle[s] = 0
	d := &sl.data[s]
	w := d.waiters[:0]
	*d = instData{waiters: w}
	sl.free = append(sl.free, s)
}
