package ooo

import (
	"fmt"

	"prisim/internal/bpred"
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
)

func panicf(format string, args ...any) { panic(fmt.Sprintf(format, args...)) }

// srcOperand is one renamed source operand as held in the payload RAM.
type srcOperand struct {
	op       core.Operand
	producer *dynInst // in-flight producer, nil when the value is at rest
	ready    bool     // wakeup received (possibly speculative)
	released bool     // reader reference returned to the renamer
}

// waiter links a scheduler entry to the producer it waits on. srcIdx is the
// operand index, or -1 for a load waiting on an older store.
type waiter struct {
	inst   *dynInst
	srcIdx int
}

// dynInst is one in-flight dynamic instruction.
type dynInst struct {
	seq  uint64 // emulator sequence number (1-based)
	pc   uint64
	inst isa.Inst
	info emu.StepInfo // functional outcome

	// Control flow.
	isCtrl     bool
	pred       bpred.Prediction
	predNPC    uint64
	mispredict bool
	ckpt       *core.Checkpoint
	resolved   bool

	// Rename.
	srcs    [3]srcOperand
	nsrc    int
	hasDest bool
	alloc   core.Allocation

	// Scheduler state.
	inROB     bool
	inSched   bool
	issued    bool
	executed  bool // passed the execute check; completion scheduled
	completed bool // result available (end of Exe)
	retired   bool // written back (PRI ran)
	squashed  bool
	replays   int
	notReady  int // operands (and memory orderings) still awaited
	waiters   []waiter

	// Memory.
	inLSQ   bool
	memWait bool // counted one notReady unit for a store conflict

	// Timing.
	fetchCycle    uint64
	renameCycle   uint64
	execStart     uint64
	readyCycle    uint64 // cycle the result is bypass-available
	completeCycle uint64
}

func (d *dynInst) String() string {
	return fmt.Sprintf("#%d @%#x %s", d.seq, d.pc, d.inst)
}

// resultAvailableBy reports whether the instruction's result can feed a
// consumer that begins executing at cycle t.
func (d *dynInst) resultAvailableBy(t uint64) bool {
	return d.completed || (d.executed && d.readyCycle <= t)
}

// addWaiter registers a scheduler-resident consumer to be woken by this
// instruction.
func (d *dynInst) addWaiter(w waiter) { d.waiters = append(d.waiters, w) }
