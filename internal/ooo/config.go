// Package ooo implements the execution-driven out-of-order timing model:
// the 12-stage pipeline of the paper's Figure 5
//
//	Fetch Decode Rename Queue Sched Disp Disp RF RF Exe Retire Commit
//
// with speculative scheduling and selective replay, a finite physical
// register file managed by internal/core (where physical register inlining
// lives), wrong-path fetch backed by the functional emulator's rollback,
// checkpointed rename maps, a load/store queue with store-to-load
// forwarding, and the Table 1 branch predictor and cache hierarchy.
package ooo

import (
	"prisim/internal/bpred"
	"prisim/internal/core"
	"prisim/internal/isa"
	"prisim/internal/memsys"
)

// Config describes one machine configuration (the paper's Table 1).
type Config struct {
	Name  string
	Width int // fetch/rename/issue/commit width

	ROBSize   int
	LSQSize   int
	SchedSize int

	Rename core.Params
	Bpred  bpred.Config
	Mem    memsys.Config

	// FUCount is the number of functional units per class.
	FUCount [isa.NumFUClasses]int

	// SchedToExec is the select-to-execute depth (Disp Disp RF RF = 4).
	SchedToExec int
	// FrontDepth is the fetch-to-rename depth (Fetch Decode = 2).
	FrontDepth int

	// ConservativeDisambiguation makes loads wait for every older store
	// address instead of using oracle memory disambiguation (ablation).
	ConservativeDisambiguation bool

	// InlineAtRename extends PRI with the paper's Section 6 future-work
	// idea: a load-immediate of a narrow value is inlined at rename and
	// never allocates a physical register.
	InlineAtRename bool

	// DelayedAllocation models the paper's other Section 6 direction, the
	// virtual-physical register scheme [7,17]: rename hands out unbounded
	// virtual tags (no rename stall on registers) and a physical register
	// is bound only at writeback, which stalls when all IntPRs/FPPRs
	// physical registers hold live values. The ROB head is exempt (the
	// reserved-register deadlock-avoidance rule). Composes with PRI: a
	// narrow result that inlines into the map never binds a register.
	DelayedAllocation bool

	// WatchdogCycles aborts the simulation if no instruction commits for
	// this many cycles (a model deadlock); 0 uses a generous default.
	WatchdogCycles uint64
}

// Width4 returns the paper's 4-wide "current generation" machine: 512 ROB,
// 256 LSQ, 32-entry scheduler, 64+64 physical registers, 7-bit narrow
// budget.
func Width4() Config {
	return Config{
		Name:      "width4",
		Width:     4,
		ROBSize:   512,
		LSQSize:   256,
		SchedSize: 32,
		Rename: core.Params{
			IntPRs: 64, FPPRs: 64,
			IntNarrowBits: 7,
			FPInline:      true,
		},
		Bpred:       bpred.Default(),
		Mem:         memsys.Default(),
		FUCount:     [isa.NumFUClasses]int{4, 1, 2, 2, 1},
		SchedToExec: 4,
		FrontDepth:  2,
	}
}

// Width8 returns the paper's 8-wide "future" machine: 512-entry scheduler
// (effectively unbounded, matching the ROB) and a 10-bit narrow budget.
func Width8() Config {
	cfg := Width4()
	cfg.Name = "width8"
	cfg.Width = 8
	cfg.SchedSize = 512
	cfg.Rename.IntNarrowBits = 10
	cfg.FUCount = [isa.NumFUClasses]int{8, 2, 4, 4, 2}
	return cfg
}

// WithPolicy returns a copy of cfg running the given release policy.
func (c Config) WithPolicy(p core.Policy) Config {
	c.Rename.Policy = p
	return c
}

// WithPRs returns a copy of cfg with both physical register files resized
// (the Figure 9 sensitivity axis).
func (c Config) WithPRs(n int) Config {
	c.Rename.IntPRs = n
	c.Rename.FPPRs = n
	return c
}

func (c *Config) validate() {
	if c.Width <= 0 || c.ROBSize <= 0 || c.LSQSize <= 0 || c.SchedSize <= 0 {
		panic("ooo: nonpositive structure size")
	}
	if c.DelayedAllocation {
		// Virtual tags are unbounded; the physical bound moves to the
		// writeback gate, which reads IntPRs/FPPRs from the rename params.
		c.Rename.Policy.Infinite = true
	}
	c.Rename.Validate()
	if c.SchedToExec < 1 {
		c.SchedToExec = 1
	}
	if c.FrontDepth < 1 {
		c.FrontDepth = 1
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = 200_000
	}
	for cl, n := range c.FUCount {
		if n <= 0 {
			panicf("ooo: no functional units of class %v", isa.FUClass(cl))
		}
	}
}
