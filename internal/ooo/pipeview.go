package ooo

import (
	"bufio"
	"fmt"
	"io"

	"prisim/internal/isa"
)

// PipeView streams per-instruction stage timestamps in the O3PipeView text
// format that gem5's pipeline viewers (o3-pipeview, Konata) consume, making
// the 12-stage pipeline's behaviour — stalls, replays, squashes, the
// register-free waits PRI removes — visually inspectable.
//
// Enable it with Pipeline.SetPipeView before Run. One record is emitted per
// instruction at commit (or at squash, with a zero retire timestamp, the
// format's squashed-instruction convention). Emission sites test p.view for
// nil themselves so the disabled case costs nothing on the commit path.
type pipeView struct {
	w *bufio.Writer
}

// SetPipeView directs pipeline visualization output to w until the
// pipeline is discarded. Call Flush on your writer after Run if buffering
// matters; the pipeline flushes on HALT commit.
func (p *Pipeline) SetPipeView(w io.Writer) {
	p.view = &pipeView{w: bufio.NewWriter(w)}
}

func (v *pipeView) emit(p *Pipeline, s int32, retire uint64) {
	d := &p.slab.data[s]
	// Stage timestamps reconstructed from the instruction's journey.
	fetch := d.fetchCycle
	decode := fetch + 1
	rename := d.renameCycle
	dispatch := rename + 1
	issue := d.execStart // end of the Disp/Disp/RF/RF traversal
	complete := p.slab.completeCycle[s]
	if issue == 0 {
		issue = dispatch
	}
	if complete == 0 {
		complete = issue
	}
	fmt.Fprintf(v.w, "O3PipeView:fetch:%d:0x%08x:0:%d:%s\n", fetch, d.pc, p.slab.seq[s], d.uop.Inst)
	fmt.Fprintf(v.w, "O3PipeView:decode:%d\n", decode)
	fmt.Fprintf(v.w, "O3PipeView:rename:%d\n", rename)
	fmt.Fprintf(v.w, "O3PipeView:dispatch:%d\n", dispatch)
	fmt.Fprintf(v.w, "O3PipeView:issue:%d\n", issue)
	fmt.Fprintf(v.w, "O3PipeView:complete:%d\n", complete)
	kind := "system"
	switch {
	case d.uop.Flags&isa.UopLoad != 0:
		kind = "load"
	case d.uop.Flags&isa.UopStore != 0:
		kind = "store"
	}
	fmt.Fprintf(v.w, "O3PipeView:retire:%d:%s:0\n", retire, kind)
}

func (v *pipeView) flush() {
	if v != nil {
		v.w.Flush()
	}
}

// FlushPipeView drains any buffered visualization output; call it after a
// Run that ended on an instruction budget rather than on HALT.
func (p *Pipeline) FlushPipeView() { p.view.flush() }
