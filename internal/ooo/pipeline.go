// Package ooo is the cycle-level out-of-order pipeline model: fetch, rename,
// speculative scheduling, replay, and the commit-time PRI machinery, driven
// by an allocation-free event wheel over slot-recycled instruction slabs.
//
// The package promises deterministic simulation — output is a pure function
// of program and configuration, pinned bit-for-bit by the golden-hash tests.
//
//prisim:deterministic
package ooo

import (
	"fmt"

	"prisim/internal/asm"
	"prisim/internal/bpred"
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
	"prisim/internal/memsys"
)

// Pipeline is one simulated machine: functional emulator, rename machinery,
// predictors, caches, and all in-flight instruction state.
type Pipeline struct {
	cfg Config
	m   *emu.Machine
	ren *core.Renamer
	bp  *bpred.Predictor
	mem *memsys.Hierarchy

	now  uint64
	done bool

	// All in-flight instruction state, indexed by slot.
	slab instSlab

	// Reorder buffer: ring of in-flight slots in program order.
	rob     []int32
	robHead int
	robLen  int

	// Load/store queue (in-flight memory ops, program order).
	lsq     []int32
	lsqHead int

	// Front end: ring of fetched slots waiting for rename.
	fetchBuf        []int32
	fetchHead       int
	fetchCount      int
	fetchStallUntil uint64

	// Scheduler.
	schedCount int
	readyQ     readyQueue
	schedStash []readyEnt                 // not-yet-selectable entries, reused every cycle
	fu         [isa.NumFUClasses][]uint64 // busy-until per unit

	wheel eventWheel

	squashScratch []int32

	// Per-physical-register pipeline bookkeeping (index 0 = int, 1 = fp).
	// prReaders is maintained only under the IdealFixup policy — its one
	// consumer — so the common configurations skip the bookkeeping entirely.
	prProducer   [2][]int32
	prReaders    [2][][]waiter
	trackReaders bool

	lastCommitCycle uint64
	renameCursor    uint64 // seq of the youngest renamed instruction
	view            *pipeView
	stats           Stats
}

type eventKind uint8

const (
	evExecStart eventKind = iota
	evComplete
	evRetire
	evWake
)

// event is one pending pipeline action, packed to 24 bytes so a wheel bucket
// stays dense. gen and seq are frozen at post time: gen invalidates the
// event if the slot is recycled first, and seq preserves the deterministic
// oldest-first processing order regardless of recycling.
type event struct {
	seq uint64
	//prisim:genlink
	inst   int32
	gen    uint32
	kind   eventKind
	srcIdx int8
}

// New builds a pipeline for prog under cfg. The program is loaded but not
// started; call FastForward and/or Run.
func New(cfg Config, prog *asm.Program) *Pipeline {
	cfg.validate()
	return build(cfg, emu.New(prog), bpred.New(cfg.Bpred), memsys.New(cfg.Mem))
}

// build assembles a pipeline around pre-existing machine/predictor/hierarchy
// state — freshly constructed by New, or cloned from a WarmState by
// NewFromWarm. cfg must already be validated.
func build(cfg Config, m *emu.Machine, bp *bpred.Predictor, mem *memsys.Hierarchy) *Pipeline {
	p := &Pipeline{
		cfg:      cfg,
		m:        m,
		ren:      core.NewRenamer(cfg.Rename),
		bp:       bp,
		mem:      mem,
		rob:      newSlotRing(cfg.ROBSize),
		fetchBuf: newSlotRing((cfg.FrontDepth + 2) * cfg.Width),
	}
	p.wheel.init()
	for cl := range p.fu {
		p.fu[cl] = make([]uint64, cfg.FUCount[cl])
	}
	p.prProducer[0] = newSlotRing(cfg.Rename.IntPRs)
	p.prProducer[1] = newSlotRing(cfg.Rename.FPPRs)
	if cfg.Rename.Policy.IdealFixup {
		p.trackReaders = true
		p.prReaders[0] = make([][]waiter, cfg.Rename.IntPRs)
		p.prReaders[1] = make([][]waiter, cfg.Rename.FPPRs)
		p.ren.OnFixup = p.idealFixup
	}
	p.prewarm()
	return p
}

// newSlotRing returns a slot array of length n with every entry empty.
func newSlotRing(n int) []int32 {
	r := make([]int32, n)
	for i := range r {
		r[i] = noSlot
	}
	return r
}

// prewarm sizes the slab and free list to the pipeline's in-flight capacity
// bound (ROB plus the fetch ring: rename admits nothing beyond ROBSize, and
// fetch admits nothing beyond the ring) in one allocation per array, and
// pre-sizes the rename machinery's checkpoint pool to a steady-state branch
// population, so simulation — including the first squash storms — measures
// the kernel, not pool growth.
func (p *Pipeline) prewarm() {
	n := p.cfg.ROBSize + len(p.fetchBuf)
	sl := &p.slab
	sl.gen = make([]uint32, n)
	sl.seq = make([]uint64, n)
	sl.flags = make([]instFlag, n)
	sl.notReady = make([]int32, n)
	sl.readyCycle = make([]uint64, n)
	sl.completeCycle = make([]uint64, n)
	sl.data = make([]instData, n)
	sl.free = make([]int32, 0, n)
	for s := int32(n) - 1; s >= 0; s-- {
		sl.free = append(sl.free, s)
	}
	p.ren.PrewarmCheckpoints(32)
}

// Machine exposes the functional emulator (for output and test inspection).
func (p *Pipeline) Machine() *emu.Machine { return p.m }

// Renamer exposes the rename machinery (for statistics).
func (p *Pipeline) Renamer() *core.Renamer { return p.ren }

// Mem exposes the cache hierarchy.
func (p *Pipeline) Mem() *memsys.Hierarchy { return p.mem }

// Bpred exposes the branch predictor.
func (p *Pipeline) Bpred() *bpred.Predictor { return p.bp }

// Stats returns the accumulated timing statistics.
func (p *Pipeline) Stats() *Stats { return &p.stats }

// Now returns the current cycle.
func (p *Pipeline) Now() uint64 { return p.now }

// FastForward functionally executes n instructions (no timing, no undo log)
// to skip initialization, as the paper does before measurement. Caches and
// the branch predictor are warmed functionally so short measurement runs are
// not dominated by compulsory misses.
func (p *Pipeline) FastForward(n uint64) uint64 {
	var done uint64
	for done < n && !p.m.Halted() {
		pc := p.m.PC
		u := *p.m.PeekUop()
		var pred bpred.Prediction
		if u.Flags&isa.UopControl != 0 {
			pred = p.bp.Predict(pc, u.Inst)
		}
		info := p.m.Step()
		done++
		p.mem.InstFetch(pc)
		if info.IsMem {
			p.mem.Data(info.MemAddr, u.Flags&isa.UopStore != 0)
		}
		if u.Flags&isa.UopControl != 0 {
			predNPC := pc + 4
			if pred.Taken {
				predNPC = pred.Target
			}
			if predNPC != info.NextPC {
				p.bp.Recover(pc, u.Inst, pred, info.Taken)
			}
			p.bp.Update(pc, u.Inst, pred, info.Taken, info.NextPC)
		}
	}
	return done
}

// Run simulates until maxCommit instructions have committed or the program's
// HALT commits, and returns the number committed.
func (p *Pipeline) Run(maxCommit uint64) uint64 {
	// Recording must survive across budgeted Runs: in-flight wrong-path
	// speculation still needs its rollback window on resumption. It is
	// torn down only once the program's HALT commits.
	if !p.m.Recording() {
		p.m.StartRecording()
	}
	start := p.stats.Committed
	p.lastCommitCycle = p.now
	for !p.done && p.stats.Committed-start < maxCommit {
		p.cycle()
		if p.now-p.lastCommitCycle > p.cfg.WatchdogCycles {
			panic(fmt.Sprintf("ooo: no commit for %d cycles at cycle %d (head %s)",
				p.cfg.WatchdogCycles, p.now, p.instString(p.robPeek())))
		}
	}
	if p.done {
		p.m.StopRecording()
	}
	return p.stats.Committed - start
}

//prisim:hotpath
func (p *Pipeline) robPeek() int32 {
	if p.robLen == 0 {
		return noSlot
	}
	return p.rob[p.robHead]
}

// cycle advances the machine one clock. Stage order is back to front so
// same-cycle structural effects flow like hardware: results produced this
// cycle wake consumers selectable this cycle, but newly renamed instructions
// wait for the next select.
//
//prisim:hotpath
func (p *Pipeline) cycle() {
	p.now++
	p.processEvents()
	p.commit()
	p.schedule()
	p.rename()
	p.fetch()
	iOcc, fOcc := p.ren.Occupancy()
	p.stats.Cycles++
	p.stats.IntOccupancySum += uint64(iOcc)
	p.stats.FPOccupancySum += uint64(fOcc)
}

// fetch models the Fetch stage: up to Width instructions per cycle from the
// (possibly wrong-path) functional machine, stopping at the first
// predicted-taken control transfer, stalling on instruction cache misses.
// The fetch buffer is a fixed ring sized to the front-end capacity, so
// advancing it never copies and its slots are recycled in place.
//
//prisim:hotpath
func (p *Pipeline) fetch() {
	if p.now < p.fetchStallUntil || p.m.Halted() {
		return
	}
	if p.fetchCount >= len(p.fetchBuf) {
		return
	}
	hitLat := p.cfg.Mem.IL1.Latency
	lat := p.mem.InstFetch(p.m.PC)
	if lat > hitLat {
		// Miss: the front end stalls for the extra fill time.
		p.fetchStallUntil = p.now + uint64(lat-hitLat)
		return
	}
	for n := 0; n < p.cfg.Width; n++ {
		if p.m.Halted() || p.fetchCount >= len(p.fetchBuf) {
			break
		}
		pc := p.m.PC
		s := p.newInst()
		d := &p.slab.data[s]
		// Step writes the report straight into the slot's cold slab entry;
		// the uop is copied by value because the cache's scratch entry (a
		// wrong-path PC outside the text segment) does not outlive the step.
		p.m.StepInto(&d.info)
		d.uop = *d.info.Uop
		d.info.Uop = nil
		u := &d.uop
		p.slab.seq[s] = d.info.Seq
		d.pc = pc
		d.fetchCycle = p.now
		p.stats.Fetched++
		taken := false
		if u.Flags&isa.UopControl != 0 {
			p.slab.flags[s] |= fIsCtrl
			d.pred = p.bp.Predict(pc, u.Inst)
			d.predNPC = pc + 4
			if d.pred.Taken {
				d.predNPC = d.pred.Target
			}
			if d.predNPC != d.info.NextPC {
				p.slab.flags[s] |= fMispredict
				// The machine follows its prediction; the emulator's
				// undo log lets us run the wrong path for real and roll
				// back at resolution.
				p.m.SetPC(d.predNPC)
			}
			taken = d.predNPC != pc+4
		}
		p.fetchBuf[(p.fetchHead+p.fetchCount)%len(p.fetchBuf)] = s
		p.fetchCount++
		if taken {
			break // fetch stops at the first taken branch in a cycle
		}
		if u.Flags&isa.UopHalt != 0 {
			break
		}
	}
}

//prisim:hotpath
func (p *Pipeline) fetchPeek() int32 {
	if p.fetchCount == 0 {
		return noSlot
	}
	return p.fetchBuf[p.fetchHead]
}

//prisim:hotpath
func (p *Pipeline) fetchPop() {
	p.fetchBuf[p.fetchHead] = noSlot
	p.fetchHead = (p.fetchHead + 1) % len(p.fetchBuf)
	p.fetchCount--
}

// rename models the Rename stage: in-order resource allocation (ROB, LSQ,
// scheduler entry, physical register), source lookup through the map table,
// and checkpointing at every mispredictable control instruction.
//
//prisim:hotpath
func (p *Pipeline) rename() {
	for n := 0; n < p.cfg.Width; n++ {
		s := p.fetchPeek()
		if s == noSlot {
			return
		}
		d := &p.slab.data[s]
		if d.fetchCycle+uint64(p.cfg.FrontDepth) > p.now {
			return
		}
		if p.robLen >= p.cfg.ROBSize || p.schedCount >= p.cfg.SchedSize {
			p.stats.RenameStallWindow++
			return
		}
		u := &d.uop
		if u.Flags&isa.UopMem != 0 && p.lsqLen() >= p.cfg.LSQSize {
			p.stats.RenameStallWindow++
			return
		}
		hasDest := u.Flags&isa.UopHasDest != 0
		dest := u.Dest

		// Rename-time inlining extension: a load-immediate whose value
		// fits the narrow budget never allocates a register.
		inlineNow := false
		var inlineVal uint64
		if p.cfg.InlineAtRename && p.cfg.Rename.Policy.PRI && hasDest && u.Flags&isa.UopImmLoad != 0 {
			if p.ren.Narrow(dest, d.info.Result) {
				inlineNow, inlineVal = true, d.info.Result
			}
		}
		if hasDest && !inlineNow && !p.ren.CanAllocate(dest.IsFP()) {
			p.stats.RenameStallRegs++
			return
		}

		// Sources.
		for i := 0; i < int(u.NSrc); i++ {
			a := u.Srcs[i]
			op := p.ren.LookupSrc(a)
			d.srcs[i] = srcOperand{op: op, producer: noSlot}
			switch op.Kind {
			case core.OperandPR:
				p.stats.SrcPRReads++
				cl := classOf(a)
				producer := p.prProducer[cl][op.PR]
				d.srcs[i].producer = producer
				if producer != noSlot {
					d.srcs[i].pgen = p.slab.gen[producer]
				}
				if p.trackReaders {
					p.prReaders[cl][op.PR] = append(p.prReaders[cl][op.PR],
						waiter{inst: s, gen: p.slab.gen[s], seq: p.slab.seq[s], srcIdx: int32(i)})
				}
				p.linkOperand(s, i, producer)
			case core.OperandInline:
				p.stats.SrcInlineReads++
				d.srcs[i].ready = true
			default:
				d.srcs[i].ready = true
			}
		}

		// Destination.
		if hasDest {
			p.slab.flags[s] |= fHasDest
			if inlineNow {
				d.alloc = p.ren.InlineDest(dest, inlineVal, p.now)
				p.stats.RenameInlines++
			} else {
				alloc, ok := p.ren.AllocDest(dest, p.now)
				if !ok {
					panic("ooo: allocation failed after CanAllocate")
				}
				d.alloc = alloc
				cl := classOf(dest)
				p.growPR(cl, int(alloc.PR))
				p.prProducer[cl][alloc.PR] = s
			}
		}

		// Checkpoint after the instruction's own rename so recovery
		// preserves its destination mapping.
		if u.Flags&isa.UopTakesCkpt != 0 {
			d.ckpt = p.ren.TakeCheckpoint()
		}

		d.renameCycle = p.now
		p.renameCursor = p.slab.seq[s]
		p.slab.flags[s] |= fInROB
		p.robPush(s)
		if u.Flags&isa.UopMem != 0 {
			p.slab.flags[s] |= fInLSQ
			p.lsq = append(p.lsq, s)
		}
		p.schedInsert(s)
		p.fetchPop()
	}
}

func classOf(a isa.Reg) int {
	if a.IsFP() {
		return 1
	}
	return 0
}

// growPR extends the per-PR side tables when the infinite policy grows the
// register file.
func (p *Pipeline) growPR(cl, pr int) {
	for pr >= len(p.prProducer[cl]) {
		p.prProducer[cl] = append(p.prProducer[cl], noSlot)
		if p.trackReaders {
			p.prReaders[cl] = append(p.prReaders[cl], nil)
		}
	}
}

//prisim:hotpath
func (p *Pipeline) robPush(s int32) {
	idx := (p.robHead + p.robLen) % p.cfg.ROBSize
	p.rob[idx] = s
	p.robLen++
}

func (p *Pipeline) lsqLen() int { return len(p.lsq) - p.lsqHead }

// releaseSrc returns one source operand's reader reference exactly once.
//
//prisim:hotpath
func (p *Pipeline) releaseSrc(s int32, i int, read bool) {
	so := &p.slab.data[s].srcs[i]
	if so.released {
		return
	}
	so.released = true
	if so.op.Kind != core.OperandPR {
		return
	}
	if p.trackReaders {
		p.removeReader(classOf(so.op.Arch), so.op.PR, s, i)
	}
	p.ren.ReleaseRead(so.op, p.now, read)
}

//prisim:hotpath
func (p *Pipeline) removeReader(cl int, pr core.PhysReg, s int32, i int) {
	rs := p.prReaders[cl][pr]
	for j, w := range rs {
		if w.inst == s && w.srcIdx == int32(i) {
			rs[j] = rs[len(rs)-1]
			p.prReaders[cl][pr] = rs[:len(rs)-1]
			return
		}
	}
}

// idealFixup is the paper's instantaneous associative payload-RAM update:
// every in-flight consumer still holding a pointer to (cl, pr) is converted
// to an immediate operand and its reader reference released, letting the
// register free with no delay.
func (p *Pipeline) idealFixup(fp bool, pr core.PhysReg, value uint64) {
	cl := 0
	if fp {
		cl = 1
	}
	readers := p.prReaders[cl][pr]
	for len(readers) > 0 {
		w := readers[len(readers)-1]
		if p.slab.gen[w.inst] != w.gen {
			// Defensive: a recycled reader removes itself at release or
			// squash, so a stale entry should not exist — but dropping it is
			// strictly safer than rewriting a reborn instruction's operand.
			p.prReaders[cl][pr] = readers[:len(readers)-1]
			readers = p.prReaders[cl][pr]
			continue
		}
		so := &p.slab.data[w.inst].srcs[w.srcIdx]
		op := so.op
		so.op = core.Operand{Kind: core.OperandInline, Value: value, Arch: op.Arch}
		so.producer = noSlot
		if !so.ready {
			so.ready = true
			p.operandBecameReady(w.inst)
		}
		so.released = true
		p.removeReader(cl, pr, w.inst, int(w.srcIdx))
		p.ren.ReleaseRead(op, p.now, false)
		readers = p.prReaders[cl][pr]
		p.stats.IdealFixups++
	}
}
