// Package ooo is the cycle-level out-of-order pipeline model: fetch, rename,
// speculative scheduling, replay, and the commit-time PRI machinery, driven
// by an allocation-free event wheel over pool-recycled dynInst objects.
//
// The package promises deterministic simulation — output is a pure function
// of program and configuration, pinned bit-for-bit by the golden-hash tests.
//
//prisim:deterministic
package ooo

import (
	"fmt"

	"prisim/internal/asm"
	"prisim/internal/bpred"
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
	"prisim/internal/memsys"
)

// Pipeline is one simulated machine: functional emulator, rename machinery,
// predictors, caches, and all in-flight instruction state.
type Pipeline struct {
	cfg Config
	m   *emu.Machine
	ren *core.Renamer
	bp  *bpred.Predictor
	mem *memsys.Hierarchy

	now  uint64
	done bool

	// Reorder buffer: ring of in-flight instructions in program order.
	rob     []*dynInst
	robHead int
	robLen  int

	// Load/store queue (in-flight memory ops, program order).
	lsq     []*dynInst
	lsqHead int

	// Front end: ring of fetched instructions waiting for rename.
	fetchBuf        []*dynInst
	fetchHead       int
	fetchCount      int
	fetchStallUntil uint64

	// Scheduler.
	schedCount int
	readyQ     readyQueue
	schedStash []readyEnt // not-yet-selectable entries, reused every cycle
	fu         [isa.NumFUClasses][]uint64 // busy-until per unit

	wheel eventWheel

	// dynInst recycling: instructions return here at commit or squash and
	// are reused by fetch, so the steady-state loop allocates nothing.
	freeInsts     []*dynInst
	squashScratch []*dynInst

	// Per-physical-register pipeline bookkeeping (index 0 = int, 1 = fp).
	prProducer [2][]*dynInst
	prReaders  [2][][]waiter

	lastCommitCycle uint64
	renameCursor    uint64 // seq of the youngest renamed instruction
	view            *pipeView
	stats           Stats
}

type eventKind uint8

const (
	evExecStart eventKind = iota
	evComplete
	evRetire
	evWake
)

// event is one pending pipeline action. gen and seq are frozen at post time:
// gen invalidates the event if inst is recycled first, and seq preserves the
// deterministic oldest-first processing order regardless of recycling.
type event struct {
	kind   eventKind
	srcIdx int
	gen    uint32
	seq    uint64
	//prisim:genlink
	inst *dynInst
}

// New builds a pipeline for prog under cfg. The program is loaded but not
// started; call FastForward and/or Run.
func New(cfg Config, prog *asm.Program) *Pipeline {
	cfg.validate()
	p := &Pipeline{
		cfg:      cfg,
		m:        emu.New(prog),
		ren:      core.NewRenamer(cfg.Rename),
		bp:       bpred.New(cfg.Bpred),
		mem:      memsys.New(cfg.Mem),
		rob:      make([]*dynInst, cfg.ROBSize),
		fetchBuf: make([]*dynInst, (cfg.FrontDepth+2)*cfg.Width),
	}
	p.wheel.init()
	for cl := range p.fu {
		p.fu[cl] = make([]uint64, cfg.FUCount[cl])
	}
	p.prProducer[0] = make([]*dynInst, cfg.Rename.IntPRs)
	p.prProducer[1] = make([]*dynInst, cfg.Rename.FPPRs)
	p.prReaders[0] = make([][]waiter, cfg.Rename.IntPRs)
	p.prReaders[1] = make([][]waiter, cfg.Rename.FPPRs)
	if cfg.Rename.Policy.IdealFixup {
		p.ren.OnFixup = p.idealFixup
	}
	return p
}

// Machine exposes the functional emulator (for output and test inspection).
func (p *Pipeline) Machine() *emu.Machine { return p.m }

// Renamer exposes the rename machinery (for statistics).
func (p *Pipeline) Renamer() *core.Renamer { return p.ren }

// Mem exposes the cache hierarchy.
func (p *Pipeline) Mem() *memsys.Hierarchy { return p.mem }

// Bpred exposes the branch predictor.
func (p *Pipeline) Bpred() *bpred.Predictor { return p.bp }

// Stats returns the accumulated timing statistics.
func (p *Pipeline) Stats() *Stats { return &p.stats }

// Now returns the current cycle.
func (p *Pipeline) Now() uint64 { return p.now }

// FastForward functionally executes n instructions (no timing, no undo log)
// to skip initialization, as the paper does before measurement. Caches and
// the branch predictor are warmed functionally so short measurement runs are
// not dominated by compulsory misses.
func (p *Pipeline) FastForward(n uint64) uint64 {
	var done uint64
	for done < n && !p.m.Halted() {
		pc := p.m.PC
		in := p.m.PeekInst()
		var pred bpred.Prediction
		if in.Op.IsControl() {
			pred = p.bp.Predict(pc, in)
		}
		info := p.m.Step()
		done++
		p.mem.InstFetch(pc)
		if info.IsMem {
			p.mem.Data(info.MemAddr, in.Op.IsStore())
		}
		if in.Op.IsControl() {
			predNPC := pc + 4
			if pred.Taken {
				predNPC = pred.Target
			}
			if predNPC != info.NextPC {
				p.bp.Recover(pc, in, pred, info.Taken)
			}
			p.bp.Update(pc, in, pred, info.Taken, info.NextPC)
		}
	}
	return done
}

// Run simulates until maxCommit instructions have committed or the program's
// HALT commits, and returns the number committed.
func (p *Pipeline) Run(maxCommit uint64) uint64 {
	// Recording must survive across budgeted Runs: in-flight wrong-path
	// speculation still needs its rollback window on resumption. It is
	// torn down only once the program's HALT commits.
	if !p.m.Recording() {
		p.m.StartRecording()
	}
	start := p.stats.Committed
	p.lastCommitCycle = p.now
	for !p.done && p.stats.Committed-start < maxCommit {
		p.cycle()
		if p.now-p.lastCommitCycle > p.cfg.WatchdogCycles {
			panic(fmt.Sprintf("ooo: no commit for %d cycles at cycle %d (head %v)",
				p.cfg.WatchdogCycles, p.now, p.robPeek()))
		}
	}
	if p.done {
		p.m.StopRecording()
	}
	return p.stats.Committed - start
}

//prisim:hotpath
func (p *Pipeline) robPeek() *dynInst {
	if p.robLen == 0 {
		return nil
	}
	return p.rob[p.robHead]
}

// cycle advances the machine one clock. Stage order is back to front so
// same-cycle structural effects flow like hardware: results produced this
// cycle wake consumers selectable this cycle, but newly renamed instructions
// wait for the next select.
//
//prisim:hotpath
func (p *Pipeline) cycle() {
	p.now++
	p.processEvents()
	p.commit()
	p.schedule()
	p.rename()
	p.fetch()
	iOcc, fOcc := p.ren.Occupancy()
	p.stats.Cycles++
	p.stats.IntOccupancySum += uint64(iOcc)
	p.stats.FPOccupancySum += uint64(fOcc)
}

// fetch models the Fetch stage: up to Width instructions per cycle from the
// (possibly wrong-path) functional machine, stopping at the first
// predicted-taken control transfer, stalling on instruction cache misses.
// The fetch buffer is a fixed ring sized to the front-end capacity, so
// advancing it never copies and its slots are recycled in place.
//
//prisim:hotpath
func (p *Pipeline) fetch() {
	if p.now < p.fetchStallUntil || p.m.Halted() {
		return
	}
	if p.fetchCount >= len(p.fetchBuf) {
		return
	}
	hitLat := p.cfg.Mem.IL1.Latency
	lat := p.mem.InstFetch(p.m.PC)
	if lat > hitLat {
		// Miss: the front end stalls for the extra fill time.
		p.fetchStallUntil = p.now + uint64(lat-hitLat)
		return
	}
	for n := 0; n < p.cfg.Width; n++ {
		if p.m.Halted() || p.fetchCount >= len(p.fetchBuf) {
			break
		}
		pc := p.m.PC
		info := p.m.Step()
		d := p.newInst()
		d.seq = info.Seq
		d.pc = pc
		d.inst = info.Inst
		d.info = info
		d.fetchCycle = p.now
		p.stats.Fetched++
		if d.inst.Op.IsControl() {
			d.isCtrl = true
			d.pred = p.bp.Predict(pc, d.inst)
			d.predNPC = pc + 4
			if d.pred.Taken {
				d.predNPC = d.pred.Target
			}
			d.mispredict = d.predNPC != info.NextPC
			if d.mispredict {
				// The machine follows its prediction; the emulator's
				// undo log lets us run the wrong path for real and roll
				// back at resolution.
				p.m.SetPC(d.predNPC)
			}
		}
		p.fetchBuf[(p.fetchHead+p.fetchCount)%len(p.fetchBuf)] = d
		p.fetchCount++
		if d.isCtrl && d.predNPC != pc+4 {
			break // fetch stops at the first taken branch in a cycle
		}
		if d.inst.Op == isa.OpHALT {
			break
		}
	}
}

//prisim:hotpath
func (p *Pipeline) fetchPeek() *dynInst {
	if p.fetchCount == 0 {
		return nil
	}
	return p.fetchBuf[p.fetchHead]
}

//prisim:hotpath
func (p *Pipeline) fetchPop() {
	p.fetchBuf[p.fetchHead] = nil
	p.fetchHead = (p.fetchHead + 1) % len(p.fetchBuf)
	p.fetchCount--
}

// rename models the Rename stage: in-order resource allocation (ROB, LSQ,
// scheduler entry, physical register), source lookup through the map table,
// and checkpointing at every mispredictable control instruction.
//
//prisim:hotpath
func (p *Pipeline) rename() {
	for n := 0; n < p.cfg.Width; n++ {
		d := p.fetchPeek()
		if d == nil || d.fetchCycle+uint64(p.cfg.FrontDepth) > p.now {
			return
		}
		if p.robLen >= p.cfg.ROBSize || p.schedCount >= p.cfg.SchedSize {
			p.stats.RenameStallWindow++
			return
		}
		if d.inst.Op.IsMem() && p.lsqLen() >= p.cfg.LSQSize {
			p.stats.RenameStallWindow++
			return
		}
		dest, hasDest := d.inst.Dest()

		// Rename-time inlining extension: a load-immediate whose value
		// fits the narrow budget never allocates a register.
		inlineNow := false
		var inlineVal uint64
		if p.cfg.InlineAtRename && p.cfg.Rename.Policy.PRI && hasDest && d.isImmediateLoad() {
			if p.ren.Narrow(dest, d.info.Result) {
				inlineNow, inlineVal = true, d.info.Result
			}
		}
		if hasDest && !inlineNow && !p.ren.CanAllocate(dest.IsFP()) {
			p.stats.RenameStallRegs++
			return
		}

		// Sources.
		var srcRegs [3]isa.Reg
		regs := d.inst.Sources(srcRegs[:0])
		d.nsrc = len(regs)
		for i, a := range regs {
			op := p.ren.LookupSrc(a)
			d.srcs[i].op = op
			switch op.Kind {
			case core.OperandPR:
				p.stats.SrcPRReads++
				cl := classOf(a)
				producer := p.prProducer[cl][op.PR]
				d.srcs[i].producer = producer
				if producer != nil {
					d.srcs[i].pgen = producer.gen
				}
				p.prReaders[cl][op.PR] = append(p.prReaders[cl][op.PR], waiter{inst: d, gen: d.gen, seq: d.seq, srcIdx: i})
				p.linkOperand(d, i, producer)
			case core.OperandInline:
				p.stats.SrcInlineReads++
				d.srcs[i].ready = true
			default:
				d.srcs[i].ready = true
			}
		}

		// Destination.
		if hasDest {
			d.hasDest = true
			if inlineNow {
				d.alloc = p.ren.InlineDest(dest, inlineVal, p.now)
				p.stats.RenameInlines++
			} else {
				alloc, ok := p.ren.AllocDest(dest, p.now)
				if !ok {
					panic("ooo: allocation failed after CanAllocate")
				}
				d.alloc = alloc
				cl := classOf(dest)
				p.growPR(cl, int(alloc.PR))
				p.prProducer[cl][alloc.PR] = d
			}
		}

		// Checkpoint after the instruction's own rename so recovery
		// preserves its destination mapping.
		if d.inst.Op.IsBranch() || d.inst.Op.IsIndirect() {
			d.ckpt = p.ren.TakeCheckpoint()
		}

		d.renameCycle = p.now
		p.renameCursor = d.seq
		d.inROB = true
		p.robPush(d)
		if d.inst.Op.IsMem() {
			d.inLSQ = true
			p.lsq = append(p.lsq, d)
		}
		p.schedInsert(d)
		p.fetchPop()
	}
}

// isImmediateLoad reports whether the instruction materializes a constant
// from no register inputs (addi/ori rd, zero, imm and lui).
func (d *dynInst) isImmediateLoad() bool {
	switch d.inst.Op {
	case isa.OpADDI, isa.OpORI:
		return d.inst.Ra == isa.RZero
	case isa.OpLUI:
		return true
	}
	return false
}

func classOf(a isa.Reg) int {
	if a.IsFP() {
		return 1
	}
	return 0
}

// growPR extends the per-PR side tables when the infinite policy grows the
// register file.
func (p *Pipeline) growPR(cl, pr int) {
	for pr >= len(p.prProducer[cl]) {
		p.prProducer[cl] = append(p.prProducer[cl], nil)
		p.prReaders[cl] = append(p.prReaders[cl], nil)
	}
}

//prisim:hotpath
func (p *Pipeline) robPush(d *dynInst) {
	idx := (p.robHead + p.robLen) % p.cfg.ROBSize
	p.rob[idx] = d
	p.robLen++
}

func (p *Pipeline) lsqLen() int { return len(p.lsq) - p.lsqHead }

// releaseSrc returns one source operand's reader reference exactly once.
//
//prisim:hotpath
func (p *Pipeline) releaseSrc(d *dynInst, i int, read bool) {
	s := &d.srcs[i]
	if s.released {
		return
	}
	s.released = true
	if s.op.Kind != core.OperandPR {
		return
	}
	cl := classOf(s.op.Arch)
	p.removeReader(cl, s.op.PR, d, i)
	p.ren.ReleaseRead(s.op, p.now, read)
}

//prisim:hotpath
func (p *Pipeline) removeReader(cl int, pr core.PhysReg, d *dynInst, i int) {
	rs := p.prReaders[cl][pr]
	for j, w := range rs {
		if w.inst == d && w.srcIdx == i {
			rs[j] = rs[len(rs)-1]
			p.prReaders[cl][pr] = rs[:len(rs)-1]
			return
		}
	}
}

// idealFixup is the paper's instantaneous associative payload-RAM update:
// every in-flight consumer still holding a pointer to (cl, pr) is converted
// to an immediate operand and its reader reference released, letting the
// register free with no delay.
func (p *Pipeline) idealFixup(fp bool, pr core.PhysReg, value uint64) {
	cl := 0
	if fp {
		cl = 1
	}
	readers := p.prReaders[cl][pr]
	for len(readers) > 0 {
		w := readers[len(readers)-1]
		if w.inst.gen != w.gen {
			// Defensive: a recycled reader removes itself at release or
			// squash, so a stale entry should not exist — but dropping it is
			// strictly safer than rewriting a reborn instruction's operand.
			p.prReaders[cl][pr] = readers[:len(readers)-1]
			readers = p.prReaders[cl][pr]
			continue
		}
		s := &w.inst.srcs[w.srcIdx]
		op := s.op
		s.op = core.Operand{Kind: core.OperandInline, Value: value, Arch: op.Arch}
		s.producer = nil
		if !s.ready {
			s.ready = true
			p.operandBecameReady(w.inst)
		}
		s.released = true
		p.removeReader(cl, pr, w.inst, w.srcIdx)
		p.ren.ReleaseRead(op, p.now, false)
		readers = p.prReaders[cl][pr]
		p.stats.IdealFixups++
	}
}
