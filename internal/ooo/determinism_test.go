package ooo

import (
	"fmt"
	"testing"

	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/fuzzprog"
	"prisim/internal/isa"
)

// fingerprint flattens every observable outcome of a finished run — the full
// timing statistics, both register-class lifetime statistics, and cache miss
// rates — into one comparable string.
func fingerprint(p *Pipeline) string {
	return fmt.Sprintf("stats=%+v\nint=%+v\nfp=%+v\ndl1=%v l2=%v\n",
		*p.Stats(), *p.Renamer().IntStats(), *p.Renamer().FPStats(),
		p.Mem().DL1.MissRate(), p.Mem().L2.MissRate())
}

// TestSquashHeavyDeterminism runs randomly generated programs — whose
// data-dependent branches defeat the predictor and keep the recovery path
// hot — twice per configuration and demands bit-identical statistics. This
// is the regression net for the recycling kernel: a stale dynInst reference
// surviving recycling (in a wheel bucket, a waiter list, or the ready
// queue) perturbs timing long before it corrupts architected state, and
// any perturbation shows up here as a fingerprint mismatch. Run it under
// -race to also catch unsynchronized sharing.
func TestSquashHeavyDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			prog := fuzzprog.Generate(fuzzprog.Config{Seed: seed, OuterTrips: 8, BodyLen: 40})

			ref := emu.New(prog)
			ref.Run(0)

			for _, pol := range []core.Policy{core.PolicyBase, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER} {
				cfg := Width4().WithPolicy(pol)
				first := runToHalt(t, cfg, prog)
				second := runToHalt(t, cfg, prog)
				if a, b := fingerprint(first), fingerprint(second); a != b {
					t.Errorf("%s: non-deterministic run:\nfirst:  %s\nsecond: %s", pol.Name(), a, b)
				}
				// The squash-heavy timing run must still land on the exact
				// architected state of a pure functional execution.
				m := first.Machine()
				for r := 0; r < isa.NumArchRegs; r++ {
					if m.Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
						t.Errorf("%s: %s = %#x, want %#x",
							pol.Name(), isa.Reg(r), m.Reg(isa.Reg(r)), ref.Reg(isa.Reg(r)))
					}
				}
				if first.Stats().Committed != ref.Seq() {
					t.Errorf("%s: committed %d, functional ran %d",
						pol.Name(), first.Stats().Committed, ref.Seq())
				}
				if first.Stats().Squashed == 0 {
					t.Errorf("%s: fuzz program squashed nothing; recovery path untested", pol.Name())
				}
				first.Renamer().CheckInvariants()
			}
		})
	}
}
