package ooo

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"prisim/internal/core"
	"prisim/internal/fuzzprog"
	"prisim/internal/isa"
)

// warmFingerprint extends the timing fingerprint with architected state so a
// clone that drifts functionally — not just in timing — is caught too.
func warmFingerprint(p *Pipeline) string {
	s := fingerprint(p)
	m := p.Machine()
	for r := 0; r < isa.NumArchRegs; r++ {
		s += fmt.Sprintf("r%d=%#x ", r, m.Reg(isa.Reg(r)))
	}
	return s + fmt.Sprintf("pc=%#x seq=%d out=%q", m.PC, m.Seq(), m.Output())
}

// TestWarmCloneEqualsReplay is the clone-equals-replay contract: for every
// policy family and both widths, a pipeline built from a captured warm state
// must produce bit-identical timing statistics and architected state to a
// cold pipeline that replays the fast-forward itself. The fuzz program's
// data-dependent branches keep recovery hot, so the run also stresses COW
// page writes during rollback.
func TestWarmCloneEqualsReplay(t *testing.T) {
	prog := fuzzprog.Generate(fuzzprog.Config{Seed: 42, OuterTrips: 8, BodyLen: 40})
	const ff = 2000

	// One capture serves every policy and width below: fast-forward state
	// depends only on the (shared) mem/bpred configuration.
	wp := New(Width4(), prog)
	if got := wp.FastForward(ff); got != ff {
		t.Fatalf("fast-forward ran %d instructions, want %d (program too short)", got, ff)
	}
	w := wp.CaptureWarm()
	if w.Instructions() != ff {
		t.Fatalf("WarmState.Instructions() = %d, want %d", w.Instructions(), ff)
	}
	if w.Bytes() == 0 {
		t.Fatal("WarmState.Bytes() = 0")
	}

	sawCOW := false
	policies := append([]core.Policy{core.PolicyBase}, core.AllPolicies...)
	for _, width := range []int{4, 8} {
		for _, pol := range policies {
			cfg := smallCfg(width).WithPolicy(pol)

			cold := New(cfg, prog)
			cold.FastForward(ff)
			cold.Run(1_000_000)

			hot := NewFromWarm(cfg, w)
			hot.Run(1_000_000)

			if !cold.done || !hot.done {
				t.Fatalf("w%d/%s: run did not complete (cold=%v hot=%v)", width, pol.Name(), cold.done, hot.done)
			}
			if a, b := warmFingerprint(cold), warmFingerprint(hot); a != b {
				t.Errorf("w%d/%s: warm clone diverged from cold replay:\ncold: %s\nhot:  %s", width, pol.Name(), a, b)
			}
			if hot.Machine().Mem.CowCopies() > 0 {
				sawCOW = true
			}
			hot.Renamer().CheckInvariants()
		}
	}
	if !sawCOW {
		t.Error("no run privatized any COW page; the squash/rollback path never wrote memory through the barrier")
	}
}

// TestWarmCloneConcurrent builds many pipelines from one WarmState at once —
// the way a sweep does — and demands they all match a cold run. Run under
// -race this checks the frozen-snapshot property: concurrent NewFromWarm
// never writes the shared state.
func TestWarmCloneConcurrent(t *testing.T) {
	prog := fuzzprog.Generate(fuzzprog.Config{Seed: 7, OuterTrips: 8, BodyLen: 40})
	const ff = 1500

	cfg := Width4().WithPolicy(core.PolicyPRIRcCkpt)
	cold := New(cfg, prog)
	cold.FastForward(ff)
	cold.Run(1_000_000)
	want := warmFingerprint(cold)

	wp := New(Width4(), prog)
	wp.FastForward(ff)
	w := wp.CaptureWarm()

	const n = 8
	got := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewFromWarm(cfg, w)
			p.Run(1_000_000)
			got[i] = warmFingerprint(p)
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Errorf("concurrent clone %d diverged from cold replay:\ncold: %s\nhot:  %s", i, want, g)
		}
	}
}

// TestWarmCaptureGuards pins the misuse panics: capturing after timing
// simulation, and constructing under a mismatched mem/bpred config.
func TestWarmCaptureGuards(t *testing.T) {
	prog := fuzzprog.Generate(fuzzprog.Config{Seed: 1, OuterTrips: 4, BodyLen: 20})

	t.Run("capture-after-run", func(t *testing.T) {
		p := New(Width4(), prog)
		p.Run(100)
		defer func() {
			if recover() == nil {
				t.Error("CaptureWarm after Run did not panic")
			}
		}()
		p.CaptureWarm()
	})

	t.Run("config-mismatch", func(t *testing.T) {
		p := New(Width4(), prog)
		p.FastForward(500)
		w := p.CaptureWarm()
		bad := Width4()
		bad.Mem.MSHRs = 8
		defer func() {
			if recover() == nil {
				t.Error("NewFromWarm under a different memsys config did not panic")
			}
		}()
		NewFromWarm(bad, w)
	})
}

// TestWarmOutputBytes spot-checks that program output produced before the
// capture point survives into clones byte-for-byte.
func TestWarmOutputBytes(t *testing.T) {
	prog := fuzzprog.Generate(fuzzprog.Config{Seed: 3, OuterTrips: 8, BodyLen: 40})
	p := New(Width4(), prog)
	p.FastForward(2500)
	pre := append([]byte(nil), p.Machine().Output()...)
	w := p.CaptureWarm()
	q := NewFromWarm(Width4(), w)
	if !bytes.Equal(q.Machine().Output(), pre) {
		t.Fatalf("clone output prefix %q, want %q", q.Machine().Output(), pre)
	}
}
