package ooo

import "prisim/internal/isa"

// commit retires up to Width instructions in program order. An instruction
// commits once it has been written back (retired); committing the next
// writer of an architected register frees the previous physical register
// under the conventional rule (a duplicate-tolerant no-op when PRI or ER
// already freed it). The committed slot is recycled: its ROB entry and
// producer-table entry are cleared here, and any reference that survives in
// a queued event or ready-queue entry is invalidated by the generation bump.
//
//prisim:hotpath
func (p *Pipeline) commit() {
	for n := 0; n < p.cfg.Width; n++ {
		s := p.robPeek()
		if s == noSlot || p.slab.flags[s]&fRetired == 0 {
			return
		}
		if p.slab.flags[s]&fSquashed != 0 {
			panicf("ooo: squashed %s at ROB head", p.instString(s))
		}
		d := &p.slab.data[s]
		uf := d.uop.Flags
		if uf&isa.UopStore != 0 {
			// The store leaves the LSQ and performs its cache write.
			p.mem.Data(d.info.MemAddr, true)
		}
		if uf&isa.UopMem != 0 {
			p.lsqPopHead(s)
		}
		if p.slab.flags[s]&fHasDest != 0 {
			p.ren.CommitRelease(d.alloc.Old, p.now)
		}
		if d.ckpt != nil {
			// Shadow maps are retained until the branch is architecturally
			// complete; their register pins release here.
			p.ren.ResolveCheckpoint(d.ckpt, p.now)
			d.ckpt = nil
		}
		if p.slab.flags[s]&fIsCtrl != 0 {
			// Train the predictor with architectural outcomes only.
			p.bp.Update(d.pc, d.uop.Inst, d.pred, d.info.Taken, d.info.NextPC)
		}
		if p.view != nil {
			p.view.emit(p, s, p.now)
		}
		p.rob[p.robHead] = noSlot
		p.robHead = (p.robHead + 1) % p.cfg.ROBSize
		p.robLen--
		p.stats.Committed++
		p.lastCommitCycle = p.now
		p.m.ReleaseUpTo(p.slab.seq[s])
		halt := uf&isa.UopHalt != 0
		p.clearProducer(s)
		p.recycle(s)
		if halt {
			p.done = true
			p.view.flush()
			return
		}
	}
}

// clearProducer removes slot s from the per-PR producer table so later
// renames see "value at rest" instead of a recycled slot. The entry may
// already name a newer producer if the register was freed early (PRI/ER)
// and reallocated while s was still in flight.
//
//prisim:hotpath
func (p *Pipeline) clearProducer(s int32) {
	d := &p.slab.data[s]
	if p.slab.flags[s]&fHasDest == 0 || d.alloc.PR < 0 {
		return
	}
	cl := classOf(d.alloc.Arch)
	if int(d.alloc.PR) < len(p.prProducer[cl]) && p.prProducer[cl][d.alloc.PR] == s {
		p.prProducer[cl][d.alloc.PR] = noSlot
	}
}

//prisim:hotpath
func (p *Pipeline) lsqPopHead(s int32) {
	if p.lsqHead >= len(p.lsq) || p.lsq[p.lsqHead] != s {
		panicf("ooo: LSQ head mismatch for %s", p.instString(s))
	}
	p.lsq[p.lsqHead] = noSlot
	p.lsqHead++
	if p.lsqHead > 64 && p.lsqHead*2 > len(p.lsq) {
		p.lsq = append(p.lsq[:0], p.lsq[p.lsqHead:]...)
		p.lsqHead = 0
	}
}

// recover handles a mispredicted control instruction at resolution: squash
// everything younger, restore the rename map from the instruction's
// checkpoint, rewind the branch predictor's speculative state, roll the
// functional machine back to the instruction boundary, and redirect fetch
// to the architecturally correct target.
func (p *Pipeline) recover(s int32) {
	d := &p.slab.data[s]
	seq := p.slab.seq[s]

	// Restore the map first: it discards the younger checkpoints, so the
	// per-instruction SquashUndo frees below never collide with live
	// checkpoint references.
	if d.ckpt == nil {
		panicf("ooo: mispredicted %s has no checkpoint", p.instString(s))
	}
	p.ren.RestoreCheckpoint(d.ckpt, p.now)
	d.ckpt = nil

	// Squash younger instructions from the ROB tail back to s. Recycling is
	// deferred until the LSQ below has been trimmed: the trim reads the
	// squashed flag, which recycling resets.
	scratch := p.squashScratch[:0]
	for p.robLen > 0 {
		idx := (p.robHead + p.robLen - 1) % p.cfg.ROBSize
		y := p.rob[idx]
		if p.slab.seq[y] <= seq {
			break
		}
		p.squash(y)
		p.rob[idx] = noSlot
		p.robLen--
		scratch = append(scratch, y)
	}
	// Squash the front-end ring entirely (all younger than s). Fetched-but-
	// unrenamed instructions hold no structural references, so they recycle
	// immediately.
	for i := 0; i < p.fetchCount; i++ {
		idx := (p.fetchHead + i) % len(p.fetchBuf)
		f := p.fetchBuf[idx]
		if p.slab.seq[f] <= seq {
			panicf("ooo: fetch buffer holds %s older than recovery point %s",
				p.instString(f), p.instString(s))
		}
		p.slab.flags[f] |= fSquashed
		p.stats.Squashed++
		p.recycle(f)
		p.fetchBuf[idx] = noSlot
	}
	p.fetchHead, p.fetchCount = 0, 0

	// Trim squashed LSQ tail entries (squash() marked them).
	for len(p.lsq) > p.lsqHead && p.slab.flags[p.lsq[len(p.lsq)-1]]&fSquashed != 0 {
		p.lsq[len(p.lsq)-1] = noSlot
		p.lsq = p.lsq[:len(p.lsq)-1]
	}

	// Every structure has dropped its slots; recycle the squashed set.
	// Events, waiter entries, and ready-queue entries that still name these
	// slots are neutralized by the generation bump.
	for i, y := range scratch {
		p.recycle(y)
		scratch[i] = noSlot
	}
	p.squashScratch = scratch[:0]

	// Front-end state: predictor history/RAS, functional machine, fetch PC.
	p.bp.Recover(d.pc, d.uop.Inst, d.pred, d.info.Taken)
	p.m.Rollback(seq)
	p.m.SetPC(d.info.NextPC)
	// Redirect: the corrected fetch begins after the refill bubble.
	p.fetchStallUntil = p.now + 2
}

// squash removes one in-flight instruction from every structure: reader
// references are returned, the destination register is undone, and the
// slot is flagged so queued events ignore it. The caller recycles it once
// no pipeline structure points at it.
func (p *Pipeline) squash(y int32) {
	p.slab.flags[y] |= fSquashed
	p.stats.Squashed++
	if p.view != nil {
		p.view.emit(p, y, 0) // zero retire = squashed, in pipeview convention
	}
	d := &p.slab.data[y]
	for i := 0; i < int(d.uop.NSrc); i++ {
		p.releaseSrc(y, i, false)
	}
	if p.slab.flags[y]&fHasDest != 0 {
		p.ren.SquashUndo(d.alloc, p.now)
		if d.alloc.PR >= 0 {
			cl := classOf(d.alloc.Arch)
			if p.prProducer[cl][d.alloc.PR] == y {
				p.prProducer[cl][d.alloc.PR] = noSlot
			}
		}
	}
	// Checkpoints of squashed branches were discarded wholesale by
	// RestoreCheckpoint; just drop the reference.
	d.ckpt = nil
	f := p.slab.flags[y]
	if f&fInSched != 0 && f&fIssued == 0 {
		p.schedCount--
	}
	p.slab.flags[y] &^= fInSched
	d.waiters = d.waiters[:0]
}
