package ooo

import "prisim/internal/isa"

// commit retires up to Width instructions in program order. An instruction
// commits once it has been written back (retired); committing the next
// writer of an architected register frees the previous physical register
// under the conventional rule (a duplicate-tolerant no-op when PRI or ER
// already freed it).
func (p *Pipeline) commit() {
	for n := 0; n < p.cfg.Width; n++ {
		d := p.robPeek()
		if d == nil || !d.retired {
			return
		}
		if d.squashed {
			panicf("ooo: squashed %v at ROB head", d)
		}
		if d.inst.Op.IsStore() {
			// The store leaves the LSQ and performs its cache write.
			p.mem.Data(d.info.MemAddr, true)
		}
		if d.inst.Op.IsMem() {
			p.lsqPopHead(d)
		}
		if d.hasDest {
			p.ren.CommitRelease(d.alloc.Old, p.now)
		}
		if d.ckpt != nil {
			// Shadow maps are retained until the branch is architecturally
			// complete; their register pins release here.
			p.ren.ResolveCheckpoint(d.ckpt, p.now)
			d.ckpt = nil
		}
		if d.isCtrl {
			// Train the predictor with architectural outcomes only.
			actualTarget := d.info.NextPC
			p.bp.Update(d.pc, d.inst, d.pred, d.info.Taken, actualTarget)
		}
		p.view.emit(p, d, p.now)
		p.robHead = (p.robHead + 1) % p.cfg.ROBSize
		p.robLen--
		p.stats.Committed++
		p.lastCommitCycle = p.now
		p.m.ReleaseUpTo(d.seq)
		if d.inst.Op == isa.OpHALT {
			p.done = true
			p.view.flush()
			return
		}
	}
}

func (p *Pipeline) lsqPopHead(d *dynInst) {
	if p.lsqHead >= len(p.lsq) || p.lsq[p.lsqHead] != d {
		panicf("ooo: LSQ head mismatch for %v", d)
	}
	p.lsq[p.lsqHead] = nil
	p.lsqHead++
	if p.lsqHead > 64 && p.lsqHead*2 > len(p.lsq) {
		p.lsq = append(p.lsq[:0], p.lsq[p.lsqHead:]...)
		p.lsqHead = 0
	}
}

// recover handles a mispredicted control instruction at resolution: squash
// everything younger, restore the rename map from the instruction's
// checkpoint, rewind the branch predictor's speculative state, roll the
// functional machine back to the instruction boundary, and redirect fetch
// to the architecturally correct target.
func (p *Pipeline) recover(d *dynInst) {
	// Restore the map first: it discards the younger checkpoints, so the
	// per-instruction SquashUndo frees below never collide with live
	// checkpoint references.
	if d.ckpt == nil {
		panicf("ooo: mispredicted %v has no checkpoint", d)
	}
	p.ren.RestoreCheckpoint(d.ckpt, p.now)
	d.ckpt = nil

	// Squash younger instructions from the ROB tail back to d.
	for p.robLen > 0 {
		idx := (p.robHead + p.robLen - 1) % p.cfg.ROBSize
		y := p.rob[idx]
		if y.seq <= d.seq {
			break
		}
		p.squash(y)
		p.rob[idx] = nil
		p.robLen--
	}
	// Squash the front-end buffer entirely (all younger than d).
	for i := p.fetchHead; i < len(p.fetchBuf); i++ {
		f := p.fetchBuf[i]
		if f.seq <= d.seq {
			panicf("ooo: fetch buffer holds %v older than recovery point %v", f, d)
		}
		f.squashed = true
		p.stats.Squashed++
	}
	p.fetchBuf = p.fetchBuf[:0]
	p.fetchHead = 0

	// Trim squashed LSQ tail entries (squash() marked them).
	for len(p.lsq) > p.lsqHead && p.lsq[len(p.lsq)-1].squashed {
		p.lsq[len(p.lsq)-1] = nil
		p.lsq = p.lsq[:len(p.lsq)-1]
	}

	// Front-end state: predictor history/RAS, functional machine, fetch PC.
	p.bp.Recover(d.pc, d.inst, d.pred, d.info.Taken)
	p.m.Rollback(d.seq)
	p.m.SetPC(d.info.NextPC)
	// Redirect: the corrected fetch begins after the refill bubble.
	p.fetchStallUntil = p.now + 2
}

// squash removes one in-flight instruction from every structure: reader
// references are returned, the destination register is undone, and the
// instruction is flagged so queued events ignore it.
func (p *Pipeline) squash(y *dynInst) {
	y.squashed = true
	p.stats.Squashed++
	p.view.emit(p, y, 0) // zero retire = squashed, in pipeview convention
	for i := 0; i < y.nsrc; i++ {
		p.releaseSrc(y, i, false)
	}
	if y.hasDest {
		p.ren.SquashUndo(y.alloc, p.now)
		if y.alloc.PR >= 0 {
			cl := classOf(y.alloc.Arch)
			if p.prProducer[cl][y.alloc.PR] == y {
				p.prProducer[cl][y.alloc.PR] = nil
			}
		}
	}
	// Checkpoints of squashed branches were discarded wholesale by
	// RestoreCheckpoint; just drop the reference.
	y.ckpt = nil
	if y.inSched && !y.issued {
		p.schedCount--
	}
	y.inSched = false
	y.waiters = nil
}
