package ooo

import "prisim/internal/isa"

// commit retires up to Width instructions in program order. An instruction
// commits once it has been written back (retired); committing the next
// writer of an architected register frees the previous physical register
// under the conventional rule (a duplicate-tolerant no-op when PRI or ER
// already freed it). The committed dynInst is recycled: its ROB slot and
// producer-table entry are cleared here, and any reference that survives in
// a queued event or ready-queue entry is invalidated by the generation bump.
//
//prisim:hotpath
func (p *Pipeline) commit() {
	for n := 0; n < p.cfg.Width; n++ {
		d := p.robPeek()
		if d == nil || !d.retired {
			return
		}
		if d.squashed {
			panicf("ooo: squashed %v at ROB head", d)
		}
		if d.inst.Op.IsStore() {
			// The store leaves the LSQ and performs its cache write.
			p.mem.Data(d.info.MemAddr, true)
		}
		if d.inst.Op.IsMem() {
			p.lsqPopHead(d)
		}
		if d.hasDest {
			p.ren.CommitRelease(d.alloc.Old, p.now)
		}
		if d.ckpt != nil {
			// Shadow maps are retained until the branch is architecturally
			// complete; their register pins release here.
			p.ren.ResolveCheckpoint(d.ckpt, p.now)
			d.ckpt = nil
		}
		if d.isCtrl {
			// Train the predictor with architectural outcomes only.
			actualTarget := d.info.NextPC
			p.bp.Update(d.pc, d.inst, d.pred, d.info.Taken, actualTarget)
		}
		p.view.emit(p, d, p.now)
		p.rob[p.robHead] = nil
		p.robHead = (p.robHead + 1) % p.cfg.ROBSize
		p.robLen--
		p.stats.Committed++
		p.lastCommitCycle = p.now
		p.m.ReleaseUpTo(d.seq)
		halt := d.inst.Op == isa.OpHALT
		p.clearProducer(d)
		p.recycle(d)
		if halt {
			p.done = true
			p.view.flush()
			return
		}
	}
}

// clearProducer removes d from the per-PR producer table so later renames
// see "value at rest" instead of a recycled instruction. The entry may
// already name a newer producer if the register was freed early (PRI/ER)
// and reallocated while d was still in flight.
//
//prisim:hotpath
func (p *Pipeline) clearProducer(d *dynInst) {
	if !d.hasDest || d.alloc.PR < 0 {
		return
	}
	cl := classOf(d.alloc.Arch)
	if int(d.alloc.PR) < len(p.prProducer[cl]) && p.prProducer[cl][d.alloc.PR] == d {
		p.prProducer[cl][d.alloc.PR] = nil
	}
}

//prisim:hotpath
func (p *Pipeline) lsqPopHead(d *dynInst) {
	if p.lsqHead >= len(p.lsq) || p.lsq[p.lsqHead] != d {
		panicf("ooo: LSQ head mismatch for %v", d)
	}
	p.lsq[p.lsqHead] = nil
	p.lsqHead++
	if p.lsqHead > 64 && p.lsqHead*2 > len(p.lsq) {
		p.lsq = append(p.lsq[:0], p.lsq[p.lsqHead:]...)
		p.lsqHead = 0
	}
}

// recover handles a mispredicted control instruction at resolution: squash
// everything younger, restore the rename map from the instruction's
// checkpoint, rewind the branch predictor's speculative state, roll the
// functional machine back to the instruction boundary, and redirect fetch
// to the architecturally correct target.
func (p *Pipeline) recover(d *dynInst) {
	// Restore the map first: it discards the younger checkpoints, so the
	// per-instruction SquashUndo frees below never collide with live
	// checkpoint references.
	if d.ckpt == nil {
		panicf("ooo: mispredicted %v has no checkpoint", d)
	}
	p.ren.RestoreCheckpoint(d.ckpt, p.now)
	d.ckpt = nil

	// Squash younger instructions from the ROB tail back to d. Recycling is
	// deferred until the LSQ below has been trimmed: the trim reads the
	// squashed flag, which recycling resets.
	scratch := p.squashScratch[:0]
	for p.robLen > 0 {
		idx := (p.robHead + p.robLen - 1) % p.cfg.ROBSize
		y := p.rob[idx]
		if y.seq <= d.seq {
			break
		}
		p.squash(y)
		p.rob[idx] = nil
		p.robLen--
		scratch = append(scratch, y)
	}
	// Squash the front-end ring entirely (all younger than d). Fetched-but-
	// unrenamed instructions hold no structural references, so they recycle
	// immediately.
	for i := 0; i < p.fetchCount; i++ {
		idx := (p.fetchHead + i) % len(p.fetchBuf)
		f := p.fetchBuf[idx]
		if f.seq <= d.seq {
			panicf("ooo: fetch buffer holds %v older than recovery point %v", f, d)
		}
		f.squashed = true
		p.stats.Squashed++
		p.recycle(f)
		p.fetchBuf[idx] = nil
	}
	p.fetchHead, p.fetchCount = 0, 0

	// Trim squashed LSQ tail entries (squash() marked them).
	for len(p.lsq) > p.lsqHead && p.lsq[len(p.lsq)-1].squashed {
		p.lsq[len(p.lsq)-1] = nil
		p.lsq = p.lsq[:len(p.lsq)-1]
	}

	// Every structure has dropped its pointers; recycle the squashed set.
	// Events, waiter entries, and ready-queue entries that still name these
	// instructions are neutralized by the generation bump.
	for i, y := range scratch {
		p.recycle(y)
		scratch[i] = nil
	}
	p.squashScratch = scratch[:0]

	// Front-end state: predictor history/RAS, functional machine, fetch PC.
	p.bp.Recover(d.pc, d.inst, d.pred, d.info.Taken)
	p.m.Rollback(d.seq)
	p.m.SetPC(d.info.NextPC)
	// Redirect: the corrected fetch begins after the refill bubble.
	p.fetchStallUntil = p.now + 2
}

// squash removes one in-flight instruction from every structure: reader
// references are returned, the destination register is undone, and the
// instruction is flagged so queued events ignore it. The caller recycles it
// once no pipeline structure points at it.
func (p *Pipeline) squash(y *dynInst) {
	y.squashed = true
	p.stats.Squashed++
	p.view.emit(p, y, 0) // zero retire = squashed, in pipeview convention
	for i := 0; i < y.nsrc; i++ {
		p.releaseSrc(y, i, false)
	}
	if y.hasDest {
		p.ren.SquashUndo(y.alloc, p.now)
		if y.alloc.PR >= 0 {
			cl := classOf(y.alloc.Arch)
			if p.prProducer[cl][y.alloc.PR] == y {
				p.prProducer[cl][y.alloc.PR] = nil
			}
		}
	}
	// Checkpoints of squashed branches were discarded wholesale by
	// RestoreCheckpoint; just drop the reference.
	y.ckpt = nil
	if y.inSched && !y.issued {
		p.schedCount--
	}
	y.inSched = false
	y.waiters = y.waiters[:0]
}
