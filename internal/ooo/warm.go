package ooo

import (
	"fmt"

	"prisim/internal/bpred"
	"prisim/internal/emu"
	"prisim/internal/memsys"
)

// WarmState is the complete machine state produced by one functional
// fast-forward of a workload, captured so that every later pipeline for the
// same workload can be constructed from a copy-on-write clone instead of
// replaying the fast-forward.
//
// The state is policy-independent by construction: Pipeline.FastForward
// touches only the functional machine, the branch predictor, and the cache
// hierarchy — never the renamer, scheduler, or any width/physical-register
// structure — so one WarmState serves every (policy, width, phys-regs)
// point that shares the same memory and predictor configuration.
//
// A WarmState is immutable after capture and safe for concurrent
// NewFromWarm calls: the machine snapshot inside it is frozen (every memory
// page marked shared), so cloning it never mutates the snapshot.
type WarmState struct {
	m      *emu.Machine
	bp     *bpred.Predictor
	mem    *memsys.Hierarchy
	bpCfg  bpred.Config
	memCfg memsys.Config
	instrs uint64
}

// CaptureWarm snapshots the pipeline's functional machine, branch predictor,
// and cache hierarchy after a fast-forward. It must be called before any
// timing simulation: capturing a pipeline that has run cycles would bake
// policy-dependent history into supposedly policy-independent state, so that
// is a programming error and panics.
func (p *Pipeline) CaptureWarm() *WarmState {
	if p.now != 0 || p.stats.Cycles != 0 {
		panic(fmt.Sprintf("ooo: CaptureWarm after timing simulation (cycle %d): warm state would no longer be policy-independent", p.now))
	}
	if p.m.Recording() {
		panic("ooo: CaptureWarm with the undo log active")
	}
	return &WarmState{
		// Machine.Clone yields a fully-shared (frozen) memory image, so the
		// snapshot held here is never mutated by later clones of it.
		m:      p.m.Clone(),
		bp:     p.bp.Clone(),
		mem:    p.mem.Clone(),
		bpCfg:  p.cfg.Bpred,
		memCfg: p.cfg.Mem,
		instrs: p.m.Seq(),
	}
}

// NewFromWarm builds a pipeline equivalent to New(cfg, prog) followed by the
// fast-forward that produced w, without re-executing it. The memory and
// predictor configurations must match the ones the warm state was captured
// under — warmed tables are meaningless under different geometry — and a
// mismatch panics: callers key their snapshot caches by these configs, so a
// mismatch is a caching bug, not an input error.
//
// Safe to call concurrently on one WarmState.
func NewFromWarm(cfg Config, w *WarmState) *Pipeline {
	cfg.validate()
	if cfg.Bpred != w.bpCfg {
		panic("ooo: NewFromWarm with a different bpred config than the warm state was captured under")
	}
	if cfg.Mem != w.memCfg {
		panic("ooo: NewFromWarm with a different memsys config than the warm state was captured under")
	}
	return build(cfg, w.m.Clone(), w.bp.Clone(), w.mem.Clone())
}

// Instructions returns how many instructions the captured fast-forward
// executed (less than the requested budget if the program halted early).
func (w *WarmState) Instructions() uint64 { return w.instrs }

// Bytes approximates the resident footprint of the captured state: memory
// pages (shared pages at full size), predictor tables, and cache tag arrays.
func (w *WarmState) Bytes() uint64 {
	return w.m.FootprintBytes() + w.bp.FootprintBytes() + w.mem.FootprintBytes()
}
