package ooo

// Stats accumulates the timing model's counters. Register lifetime and
// occupancy detail lives in the renamer's core.LifetimeStats; cache and
// predictor detail in their packages.
type Stats struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64
	Squashed  uint64

	Replays             uint64 // scheduler latency mis-speculation replays
	LoadConflictReplays uint64 // loads replayed behind an older store
	LoadForwards        uint64 // loads satisfied by store-to-load forwarding

	BranchResolved     uint64
	BranchMispredicted uint64

	RenameStallWindow uint64 // rename cycles lost to ROB/LSQ/scheduler
	RenameStallRegs   uint64 // rename cycles lost to an empty free list

	SrcPRReads         uint64 // source operands renamed to register pointers
	SrcInlineReads     uint64 // source operands satisfied from inlined map entries
	RetireInlines      uint64 // results inlined into the map at retire
	RenameInlines      uint64 // destinations inlined at rename (extension)
	IdealFixups        uint64 // consumers converted by the ideal payload update
	EarlyFreesAtRetire uint64

	// WritebackStalls counts retire attempts deferred by the delayed-
	// allocation writeback gate (virtual-physical extension).
	WritebackStalls uint64

	IntOccupancySum uint64 // per-cycle sum of allocated integer registers
	FPOccupancySum  uint64

	// RetireLagSum accumulates, for every writeback, how many younger
	// instructions had already renamed — the distance the WAW check races
	// against (diagnostic for PRI effectiveness).
	RetireLagSum   uint64
	RetireLagCount uint64
}

// AvgRetireLag is the mean rename-cursor distance at writeback.
func (s *Stats) AvgRetireLag() float64 {
	if s.RetireLagCount == 0 {
		return 0
	}
	return float64(s.RetireLagSum) / float64(s.RetireLagCount)
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// AvgIntOccupancy returns the mean number of allocated integer physical
// registers per cycle (the paper's Figure 11 metric).
func (s *Stats) AvgIntOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.IntOccupancySum) / float64(s.Cycles)
}

// AvgFPOccupancy returns the mean allocated floating-point registers.
func (s *Stats) AvgFPOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FPOccupancySum) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per resolved control instruction.
func (s *Stats) MispredictRate() float64 {
	if s.BranchResolved == 0 {
		return 0
	}
	return float64(s.BranchMispredicted) / float64(s.BranchResolved)
}

// InlineFraction returns the fraction of renamed source operands that were
// read directly from the map as immediates.
func (s *Stats) InlineFraction() float64 {
	total := s.SrcPRReads + s.SrcInlineReads
	if total == 0 {
		return 0
	}
	return float64(s.SrcInlineReads) / float64(total)
}
