package ooo

import (
	"fmt"
	"testing"

	"prisim/internal/core"
	"prisim/internal/fuzzprog"
	"prisim/internal/isa"
)

// TestUopCacheSharedWithTimingModel checks that the pipeline rides the
// emulator's decoded-uop cache: across a whole timing run — wrong-path
// fetch, replay, squash and all — each static instruction is decoded at
// most once, even though it executes many times dynamically.
func TestUopCacheSharedWithTimingModel(t *testing.T) {
	prog := fuzzprog.Generate(fuzzprog.Config{Seed: 3, OuterTrips: 8, BodyLen: 40})
	p := runToHalt(t, Width4(), prog)

	static := uint64(len(prog.Code))
	decodes := p.Machine().StaticDecodes()
	if decodes > static {
		t.Errorf("timing run decoded %d static instructions, program has only %d: cache not shared",
			decodes, static)
	}
	if committed := p.Stats().Committed; committed <= static {
		t.Fatalf("fuzz program committed %d <= %d static instructions; pick a longer program",
			committed, static)
	}
}

// TestUopCacheOffMatchesOn runs the full timing model with the decoded-uop
// cache disabled and demands results identical to the cached run: same
// fingerprint (every statistic), same architected registers. The cache is
// a pure memoization — any observable difference means decode has side
// effects or the cached uop diverged from a fresh decode.
func TestUopCacheOffMatchesOn(t *testing.T) {
	for _, seed := range []int64{5, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			prog := fuzzprog.Generate(fuzzprog.Config{Seed: seed, OuterTrips: 8, BodyLen: 40})
			for _, pol := range []core.Policy{core.PolicyBase, core.PolicyPRIRcCkpt} {
				cfg := Width4().WithPolicy(pol)
				cached := runToHalt(t, cfg, prog)

				uncached := New(cfg, prog)
				uncached.Machine().SetUopCache(false)
				uncached.Run(1_000_000)
				if !uncached.done {
					t.Fatalf("%s: uncached run did not complete", pol.Name())
				}

				if a, b := fingerprint(cached), fingerprint(uncached); a != b {
					t.Errorf("%s: cache changes observable behavior:\ncached:   %s\nuncached: %s",
						pol.Name(), a, b)
				}
				cm, um := cached.Machine(), uncached.Machine()
				for r := 0; r < isa.NumArchRegs; r++ {
					if cm.Reg(isa.Reg(r)) != um.Reg(isa.Reg(r)) {
						t.Errorf("%s: %s = %#x cached, %#x uncached",
							pol.Name(), isa.Reg(r), cm.Reg(isa.Reg(r)), um.Reg(isa.Reg(r)))
					}
				}
				// StaticDecodes counts cache fills: the disabled side must
				// never fill, the enabled side must actually be exercised.
				if cm.StaticDecodes() == 0 {
					t.Errorf("%s: cached run filled no uop-cache entries; cache apparently inactive", pol.Name())
				}
				if um.StaticDecodes() != 0 {
					t.Errorf("%s: uncached run filled %d uop-cache entries; SetUopCache(false) ignored",
						pol.Name(), um.StaticDecodes())
				}
			}
		})
	}
}
