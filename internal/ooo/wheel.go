package ooo

// The simulator's event queue is a bucketed event wheel: a ring of per-cycle
// event slices indexed by cycle & (wheelSize-1). Every pending wheel event is
// within wheelSize-1 cycles of now (post sends anything farther — memory-miss
// completions beyond the horizon — to a small overflow list), so each bucket
// holds at most one cycle's events and bucket backing arrays are reused
// across laps with no per-cycle map or slice allocation.
//
// Events carry the target instruction's generation and sequence number frozen
// at post time: the generation detects targets that were recycled (squash or
// commit returned the dynInst to the free list) so stale events are inert,
// and the frozen sequence keeps the per-cycle deterministic oldest-first
// processing order independent of recycling.

const (
	wheelBits = 9
	wheelSize = 1 << wheelBits // cycles covered without overflow
	wheelMask = wheelSize - 1
)

type farEvent struct {
	cycle uint64
	ev    event
}

type eventWheel struct {
	buckets  [wheelSize][]event
	overflow []farEvent // events more than wheelSize-1 cycles out
}

// init carves every bucket out of one pre-sized backing array, so posting
// allocates only when a single cycle exceeds bucketSeedCap events (the
// grown bucket then keeps its larger array for subsequent laps).
func (w *eventWheel) init() {
	const bucketSeedCap = 16
	backing := make([]event, wheelSize*bucketSeedCap)
	for i := range w.buckets {
		w.buckets[i] = backing[i*bucketSeedCap : i*bucketSeedCap : (i+1)*bucketSeedCap]
	}
}

// add schedules ev for cycle (cycle > now required).
//
//prisim:hotpath
func (w *eventWheel) add(now, cycle uint64, ev event) {
	if cycle-now < wheelSize {
		idx := cycle & wheelMask
		w.buckets[idx] = append(w.buckets[idx], ev)
		return
	}
	w.overflow = append(w.overflow, farEvent{cycle: cycle, ev: ev})
}

// addWakeBatch schedules one wake event per waiter, all for the same cycle,
// resolving the target bucket once and appending the whole batch (the
// scheduler's speculative wakeup posts every waiter of a producer at the
// same future cycle, so per-event bucket resolution is pure overhead).
//
//prisim:hotpath
func (w *eventWheel) addWakeBatch(now, cycle uint64, ws []waiter) {
	if cycle-now < wheelSize {
		idx := cycle & wheelMask
		b := w.buckets[idx]
		for i := range ws {
			b = append(b, event{kind: evWake, srcIdx: int8(ws[i].srcIdx), gen: ws[i].gen, seq: ws[i].seq, inst: ws[i].inst})
		}
		w.buckets[idx] = b
		return
	}
	for i := range ws {
		w.overflow = append(w.overflow, farEvent{cycle: cycle,
			ev: event{kind: evWake, srcIdx: int8(ws[i].srcIdx), gen: ws[i].gen, seq: ws[i].seq, inst: ws[i].inst}})
	}
}

// due returns the events scheduled for cycle now, sorted oldest instruction
// first, migrating any overflow entries that have come due. The returned
// slice is valid until the next call to reset.
//
//prisim:hotpath
func (w *eventWheel) due(now uint64) []event {
	idx := now & wheelMask
	evs := w.buckets[idx]
	if len(w.overflow) != 0 {
		kept := w.overflow[:0]
		for _, fe := range w.overflow {
			if fe.cycle == now {
				evs = append(evs, fe.ev)
			} else {
				kept = append(kept, fe)
			}
		}
		for i := len(kept); i < len(w.overflow); i++ {
			w.overflow[i] = farEvent{}
		}
		w.overflow = kept
		w.buckets[idx] = evs
	}
	// Insertion sort: buckets are small and almost sorted (posts arrive
	// roughly in program order), and unlike sort.SliceStable this allocates
	// nothing. Stability for equal sequence numbers preserves post order.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].seq < evs[j-1].seq; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	return evs
}

// reset recycles cycle now's bucket after processing, keeping its backing
// array for the wheel's next lap.
//
//prisim:hotpath
func (w *eventWheel) reset(now uint64) {
	idx := now & wheelMask
	w.buckets[idx] = w.buckets[idx][:0]
}
