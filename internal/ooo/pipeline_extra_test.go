package ooo

import (
	"strings"
	"testing"

	"prisim/internal/asm"
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
)

// TestCheckpointsDrainByCommit verifies the shadow-map lifetime rule: when
// the machine drains, no checkpoints remain live (every branch either
// committed and released its checkpoint, or was squashed).
func TestCheckpointsDrainByCommit(t *testing.T) {
	prog := buildTest(t)
	p := runToHalt(t, Width4().WithPolicy(core.PolicyPRIRcCkpt), prog)
	if n := p.Renamer().LiveCheckpoints(); n != 0 {
		t.Errorf("%d checkpoints still live after halt", n)
	}
}

// TestPinnedFreeEventuallyCompletes: under checkpoint refcounting an inlined
// register's free can be deferred, but the register population must still be
// conserved for the whole run (CheckInvariants proves free+allocated==total
// at the end, and the occupancy statistics stay within the file size).
func TestPinnedFreeEventuallyCompletes(t *testing.T) {
	prog := buildTest(t)
	p := runToHalt(t, Width4().WithPolicy(core.PolicyPRIRcCkpt), prog)
	p.Renamer().CheckInvariants()
	st := p.Renamer().IntStats()
	if st.DeferredFrees > 0 && st.EarlyFrees == 0 {
		t.Error("every deferred free was lost")
	}
	if occ := p.Stats().AvgIntOccupancy(); occ > 64 {
		t.Errorf("occupancy %v exceeds the register file", occ)
	}
}

// TestWrongPathDoesNotPolluteArchState runs a branchy program whose wrong
// paths write memory, and checks a memory region only reachable on wrong
// paths stays clean after completion.
func TestWrongPathDoesNotPolluteArchState(t *testing.T) {
	src := `
.data
good: .space 64
bad:  .space 64
.text
main:
  la   r1, good
  la   r2, bad
  li   r3, 400
  li   r6, 0
loop:
  ; data-dependent branch the predictor gets wrong regularly
  andi r4, r3, 5
  beqz r4, taken
  addi r6, r6, 1
  j next
taken:
  addi r6, r6, 2
next:
  stq  r6, 0(r1)
  addi r3, r3, -1
  bnez r3, loop
  halt
  ; unreachable code that clobbers "bad" — only a wrong path can get here
  li   r7, 123
  stq  r7, 0(r2)
  halt
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p := runToHalt(t, Width4(), prog)
	if got := p.Machine().Mem.ReadU64(prog.Symbols["bad"]); got != 0 {
		t.Errorf("wrong-path store leaked into architected memory: %#x", got)
	}
	ref := emu.New(prog)
	ref.Run(0)
	if p.Machine().Reg(isa.IntReg(6)) != ref.Reg(isa.IntReg(6)) {
		t.Error("register state diverged")
	}
}

// TestEightWideOutperformsFourWide on an ILP-rich workload.
func TestEightWideOutperformsFourWide(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main")
	b.RI(isa.OpADDI, isa.IntReg(1), isa.RZero, 2000)
	b.Label("loop")
	for i := 2; i < 20; i++ {
		b.RI(isa.OpADDI, isa.IntReg(i), isa.RZero, int64(i)) // independent
	}
	b.RI(isa.OpADDI, isa.IntReg(1), isa.IntReg(1), -1)
	b.Bnez(isa.IntReg(1), "loop")
	b.Halt()
	prog := b.MustFinish()
	p4 := runToHalt(t, Width4().WithPolicy(core.PolicyInfinite), prog)
	p8 := runToHalt(t, Width8().WithPolicy(core.PolicyInfinite), prog)
	if p8.Stats().IPC() < p4.Stats().IPC()*1.3 {
		t.Errorf("8-wide IPC %.2f not clearly above 4-wide %.2f",
			p8.Stats().IPC(), p4.Stats().IPC())
	}
}

// TestUnpipelinedDivideThroughput: divides must serialize on their unit.
func TestUnpipelinedDivideThroughput(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main")
	b.RI(isa.OpADDI, isa.IntReg(1), isa.RZero, 300)
	b.RI(isa.OpADDI, isa.IntReg(2), isa.RZero, 7)
	b.Label("loop")
	// Two independent divides per iteration; one divider at width 4.
	b.RR(isa.OpDIV, isa.IntReg(3), isa.IntReg(1), isa.IntReg(2))
	b.RR(isa.OpDIV, isa.IntReg(4), isa.IntReg(2), isa.IntReg(1))
	b.RI(isa.OpADDI, isa.IntReg(1), isa.IntReg(1), -1)
	b.Bnez(isa.IntReg(1), "loop")
	b.Halt()
	prog := b.MustFinish()
	p := runToHalt(t, Width4(), prog)
	// 600 unpipelined 20-cycle divides on one unit: at least ~12000 cycles.
	if p.Stats().Cycles < 11000 {
		t.Errorf("divides completed in %d cycles; unpipelined unit not modeled", p.Stats().Cycles)
	}
}

// TestICacheMissesStallFetch: a program whose code footprint exceeds the IL1
// must show instruction-side misses.
func TestICacheMissesStallFetch(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main")
	b.RI(isa.OpADDI, isa.IntReg(1), isa.RZero, 30)
	b.Label("loop")
	for i := 0; i < 12000; i++ { // 48KB of code > 32KB IL1
		b.RR(isa.OpADD, isa.IntReg(2), isa.IntReg(2), isa.IntReg(1))
	}
	b.RI(isa.OpADDI, isa.IntReg(1), isa.IntReg(1), -1)
	b.Bnez(isa.IntReg(1), "loop")
	b.Halt()
	prog := b.MustFinish()
	p := New(Width4(), prog)
	p.Run(300_000)
	if p.Mem().IL1.Misses == 0 {
		t.Error("no IL1 misses on a 48KB code loop")
	}
}

// TestReturnAddressStackPays: nested calls predicted by the RAS should beat
// a BTB-only machine (RAS disabled via size 0).
func TestReturnAddressStackPays(t *testing.T) {
	src := `
.text
main:
  li r1, 1500
loop:
  jal f1
  jal f2
  addi r1, r1, -1
  bnez r1, loop
  halt
f1:
  addi r2, r2, 1
  ret
f2:
  addi r3, r3, 1
  ret
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	with := runToHalt(t, Width4(), prog)
	cfg := Width4()
	cfg.Bpred.RASEntries = 0
	without := runToHalt(t, cfg, prog)
	if with.Stats().IPC() < without.Stats().IPC() {
		t.Errorf("RAS machine (%.2f) slower than no-RAS machine (%.2f)",
			with.Stats().IPC(), without.Stats().IPC())
	}
}

// TestNarrowBudgetMatters: with a narrower inline budget fewer results
// qualify, so the 8-wide (10-bit) machine inlines at least as much as a
// 1-bit-budget variant.
func TestNarrowBudgetMatters(t *testing.T) {
	prog := buildTest(t)
	wide := Width8().WithPolicy(core.PolicyPRIRcLazy)
	narrow := Width8().WithPolicy(core.PolicyPRIRcLazy)
	narrow.Rename.IntNarrowBits = 1
	pw := runToHalt(t, wide, prog)
	pn := runToHalt(t, narrow, prog)
	if pw.Renamer().IntStats().InlinedResults < pn.Renamer().IntStats().InlinedResults {
		t.Errorf("10-bit budget inlined %d < 1-bit budget %d",
			pw.Renamer().IntStats().InlinedResults, pn.Renamer().IntStats().InlinedResults)
	}
}

// TestPipeViewOutput checks the O3PipeView stream is well formed: seven
// lines per instruction, monotone stage timestamps, zero retire for
// squashed instructions.
func TestPipeViewOutput(t *testing.T) {
	prog := buildTest(t)
	p := New(Width4(), prog)
	var buf strings.Builder
	p.SetPipeView(&buf)
	p.Run(1_000_000)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines)%7 != 0 {
		t.Fatalf("pipeview emitted %d lines (not a multiple of 7)", len(lines))
	}
	nRecords := len(lines) / 7
	if uint64(nRecords) < p.Stats().Committed {
		t.Errorf("%d records for %d committed", nRecords, p.Stats().Committed)
	}
	sawSquash := false
	for i := 0; i < len(lines); i += 7 {
		if !strings.HasPrefix(lines[i], "O3PipeView:fetch:") {
			t.Fatalf("record %d starts with %q", i/7, lines[i])
		}
		if strings.HasPrefix(lines[i+6], "O3PipeView:retire:0:") {
			sawSquash = true
		}
	}
	if !sawSquash {
		t.Error("no squashed records despite mispredictions")
	}
}

// TestDelayedAllocation checks the virtual-physical extension: rename never
// stalls on registers, the writeback gate engages under pressure, programs
// complete correctly, and PRI composes (narrow results bypass the gate).
func TestDelayedAllocation(t *testing.T) {
	prog := buildTest(t)
	ref := emu.New(prog)
	ref.Run(0)

	cfg := Width4().WithPRs(40)
	cfg.DelayedAllocation = true
	p := runToHalt(t, cfg, prog)
	if p.Stats().RenameStallRegs != 0 {
		t.Errorf("rename stalled on registers %d times under delayed allocation",
			p.Stats().RenameStallRegs)
	}
	for r := 0; r < isa.NumArchRegs; r++ {
		if p.Machine().Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
			t.Errorf("%s diverged", isa.Reg(r))
		}
	}

	// Under pressure the gate must actually engage...
	if p.Stats().WritebackStalls == 0 {
		t.Error("writeback gate never engaged at 40 registers")
	}
	// ...and the virtual scheme should beat plain base at equal PRs, since
	// unwritten instructions no longer hold registers.
	base := runToHalt(t, Width4().WithPRs(40), prog)
	if p.Stats().IPC() < base.Stats().IPC() {
		t.Errorf("delayed allocation IPC %.3f < base %.3f",
			p.Stats().IPC(), base.Stats().IPC())
	}

	// PRI composes: narrow results bypass the gate, so adding PRI to the
	// virtual-physical machine must not slow it down materially.
	cfgPRI := cfg.WithPolicy(core.PolicyPRIRcLazy)
	cfgPRI.DelayedAllocation = true
	pp := runToHalt(t, cfgPRI, prog)
	if pp.Stats().IPC() < p.Stats().IPC()*0.98 {
		t.Errorf("PRI+delayed IPC %.3f well below delayed-only %.3f",
			pp.Stats().IPC(), p.Stats().IPC())
	}
	if pp.Renamer().IntStats().InlinedResults == 0 {
		t.Error("PRI never inlined under delayed allocation")
	}
}

// TestMSHRBoundSlowsMemoryBoundCode: bounding miss overlap must not speed
// anything up, and must clearly slow a load-parallel miss-heavy kernel.
func TestMSHRBoundSlowsMemoryBoundCode(t *testing.T) {
	b := asm.NewBuilder()
	n := 1 << 16
	words := make([]uint64, n)
	b.Words("arr", words)
	b.Label("main")
	b.La(isa.IntReg(1), "arr")
	b.RI(isa.OpADDI, isa.IntReg(2), isa.RZero, 800)
	// Base pointers 64KB apart so eight independent loads miss every level.
	for i := 0; i < 8; i++ {
		b.RI(isa.OpADDI, isa.IntReg(12+i), isa.RZero, 0)
		b.RR(isa.OpADD, isa.IntReg(12+i), isa.IntReg(1), isa.RZero)
		for k := 0; k < i; k++ {
			b.RI(isa.OpADDI, isa.IntReg(12+i), isa.IntReg(12+i), 32000)
			b.RI(isa.OpADDI, isa.IntReg(12+i), isa.IntReg(12+i), 32000)
		}
	}
	b.Label("loop")
	for i := 0; i < 8; i++ { // eight independent far-apart loads
		b.Load(isa.OpLDQ, isa.IntReg(3+i), isa.IntReg(12+i), 0)
	}
	for i := 0; i < 8; i++ {
		b.RI(isa.OpADDI, isa.IntReg(12+i), isa.IntReg(12+i), 16)
	}
	b.RI(isa.OpADDI, isa.IntReg(2), isa.IntReg(2), -1)
	b.Bnez(isa.IntReg(2), "loop")
	b.Halt()
	prog := b.MustFinish()

	unlimited := runToHalt(t, Width8(), prog)
	cfg := Width8()
	cfg.Mem.MSHRs = 1
	bounded := runToHalt(t, cfg, prog)
	if bounded.Stats().IPC() >= unlimited.Stats().IPC() {
		t.Errorf("1 MSHR (%.3f) not slower than unlimited (%.3f)",
			bounded.Stats().IPC(), unlimited.Stats().IPC())
	}
	if bounded.Mem().MSHRWaits == 0 {
		t.Error("no MSHR waits recorded")
	}
}

// TestUnnamedPolicyCombinations runs the full pipeline under every
// combination of the release-policy bits, including ones the paper never
// names (ER with lazy PRI checkpoint patching once leaked checkpoint
// references and deadlocked rename). Each must complete and preserve
// architected state.
func TestUnnamedPolicyCombinations(t *testing.T) {
	prog := buildTest(t)
	ref := emu.New(prog)
	ref.Run(0)
	for bits := 0; bits < 16; bits++ {
		pol := core.Policy{
			PRI:          bits&1 != 0,
			IdealFixup:   bits&2 != 0,
			CkptRefCount: bits&4 != 0,
			ER:           bits&8 != 0,
		}
		cfg := Width4().WithPolicy(pol).WithPRs(40) // tight file: leaks deadlock fast
		p := runToHalt(t, cfg, prog)
		for r := 0; r < isa.NumArchRegs; r++ {
			if p.Machine().Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
				t.Fatalf("policy %+v: %s diverged", pol, isa.Reg(r))
			}
		}
		p.Renamer().CheckInvariants()
	}
}
