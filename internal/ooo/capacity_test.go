package ooo

import (
	"testing"

	"prisim/internal/asm"
	"prisim/internal/core"
	"prisim/internal/isa"
)

// TestLSQCapacityStallsRename: a miss-blocked commit with hundreds of stores
// behind it must fill the LSQ and stall rename (window stall counter), not
// deadlock or overflow.
func TestLSQCapacityStallsRename(t *testing.T) {
	b := asm.NewBuilder()
	n := 1 << 15
	ring := make([]uint64, n)
	base := uint64(asm.DefaultDataBase)
	for i := range ring {
		ring[i] = base + 8*((uint64(i)+4099)%uint64(n))
	}
	b.Words("ring", ring)
	b.Space("sink", 1<<16)
	b.Label("main")
	b.La(isa.IntReg(1), "ring")
	b.La(isa.IntReg(9), "sink")
	b.RI(isa.OpADDI, isa.IntReg(2), isa.RZero, 400)
	b.Label("loop")
	b.Load(isa.OpLDQ, isa.IntReg(1), isa.IntReg(1), 0) // serialized miss
	for i := 0; i < 12; i++ {                          // store burst fills the LSQ
		b.Store(isa.OpSTQ, isa.IntReg(2), isa.IntReg(9), int64(8*i))
	}
	b.RI(isa.OpADDI, isa.IntReg(2), isa.IntReg(2), -1)
	b.Bnez(isa.IntReg(2), "loop")
	b.Halt()
	prog := b.MustFinish()

	cfg := Width8().WithPolicy(core.PolicyInfinite) // remove register limits
	cfg.LSQSize = 64
	p := runToHalt(t, cfg, prog)
	if p.Stats().RenameStallWindow == 0 {
		t.Error("LSQ never filled despite a 64-entry queue and store bursts")
	}
}

// TestSchedulerCapacityRespected: with infinite registers and a blocked
// dependence chain, the scheduler occupancy (unissued entries) must bound
// rename, and the run must still complete.
func TestSchedulerCapacityRespected(t *testing.T) {
	b := asm.NewBuilder()
	n := 1 << 15
	ring := make([]uint64, n)
	base := uint64(asm.DefaultDataBase)
	for i := range ring {
		ring[i] = base + 8*((uint64(i)+4099)%uint64(n))
	}
	b.Words("ring", ring)
	b.Label("main")
	b.La(isa.IntReg(1), "ring")
	b.RI(isa.OpADDI, isa.IntReg(2), isa.RZero, 300)
	b.Label("loop")
	b.Load(isa.OpLDQ, isa.IntReg(1), isa.IntReg(1), 0)
	for i := 3; i < 20; i++ { // all depend on the missing load
		b.RR(isa.OpADD, isa.IntReg(i), isa.IntReg(1), isa.IntReg(2))
	}
	b.RI(isa.OpADDI, isa.IntReg(2), isa.IntReg(2), -1)
	b.Bnez(isa.IntReg(2), "loop")
	b.Halt()
	prog := b.MustFinish()

	small := Width8().WithPolicy(core.PolicyInfinite)
	small.SchedSize = 8
	big := Width8().WithPolicy(core.PolicyInfinite)
	ps := runToHalt(t, small, prog)
	pb := runToHalt(t, big, prog)
	if ps.Stats().RenameStallWindow == 0 {
		t.Error("8-entry scheduler never stalled rename")
	}
	if ps.Stats().IPC() > pb.Stats().IPC()+1e-9 {
		t.Errorf("tiny scheduler (%.3f) beat the 512-entry one (%.3f)",
			ps.Stats().IPC(), pb.Stats().IPC())
	}
}

// TestROBCapacityBoundsInFlight: the fetch/rename machinery must never hold
// more than ROBSize instructions between rename and commit.
func TestROBCapacityBoundsInFlight(t *testing.T) {
	prog := buildTest(t)
	cfg := Width8().WithPolicy(core.PolicyInfinite)
	cfg.ROBSize = 16
	p := runToHalt(t, cfg, prog)
	if p.Stats().RenameStallWindow == 0 {
		t.Error("16-entry ROB never stalled rename")
	}
}

// TestDeterminismAcrossRuns: identical configuration must produce identical
// cycle counts — the simulator has no hidden nondeterminism.
func TestDeterminismAcrossRuns(t *testing.T) {
	prog := buildTest(t)
	run := func() (uint64, uint64) {
		p := New(Width8().WithPolicy(core.PolicyPRIPlusER), prog)
		p.FastForward(500)
		p.Run(20000)
		return p.Stats().Cycles, p.Stats().Committed
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", c1, n1, c2, n2)
	}
}
