// Package core implements the paper's contribution: register renaming with
// physical register inlining (PRI), plus the prior-work early-release (ER)
// scheme it is compared against and combined with.
//
// The rename map is a RAM table (one entry per architected register) whose
// entries support two addressing modes: *register* (a pointer into the
// physical register file) and *immediate* (a narrow value inlined directly
// into the entry). When a retiring instruction's result fits the narrow
// budget, the value is written into the map entry and the physical register
// is released long before the conventional release point — subject to the
// WAR/WAW guards of Sections 3.2-3.4 of the paper, all of which are modeled
// here:
//
//   - duplicate-tolerant free list (generation-tagged deallocation),
//   - WAW check before the late map update (Figure 7),
//   - reader reference counts or ideal payload fix-up against the stale
//     pointer WAR violation (Figure 6),
//   - checkpoint reference counts or lazy checkpoint patching against stale
//     pointers in shadow maps.
package core

import "prisim/internal/isa"

// Policy selects the register release scheme. The zero value is the
// conventional baseline: release a physical register when the next writer
// of the same architected register commits.
type Policy struct {
	// PRI enables physical register inlining at retire.
	PRI bool
	// IdealFixup models the paper's "ideal" PRI variant: an associative
	// payload-RAM update converts in-flight stale consumers to immediates
	// instantly, so a reader reference count never delays the free. When
	// false, PRI uses the reference-counting scheme.
	IdealFixup bool
	// CkptRefCount selects the checkpoint reference counting scheme for
	// stale pointers in shadow maps; false selects the lazy checkpoint
	// update scheme. Only meaningful with PRI.
	CkptRefCount bool
	// ER enables prior-work early release (Moudgill et al.): a register is
	// freed once it is complete, unmapped in the current and all
	// checkpointed maps, and has no outstanding readers.
	ER bool
	// Infinite removes the physical register file bound entirely (the
	// paper's idealized "Inf Physical Register" configuration).
	Infinite bool
}

// usesCkptRefs reports whether checkpoints pin the registers they name.
func (p Policy) usesCkptRefs() bool { return p.ER || (p.PRI && p.CkptRefCount) }

// Name returns the paper's label for the policy. Combinations that arise
// from the virtual-physical extension (unbounded allocation plus PRI) get
// compound names so they stay distinguishable in experiment caches.
func (p Policy) Name() string {
	switch {
	case p.Infinite && p.PRI:
		return "infpr+pri"
	case p.Infinite && p.ER:
		return "infpr+er"
	case p.Infinite:
		return "infpr"
	case p.PRI && p.ER && p.CkptRefCount:
		return "pri+er"
	case p.PRI && p.ER:
		return "pri+er-lazy"
	case p.PRI && p.IdealFixup && p.CkptRefCount:
		return "pri-ideal-ckpt"
	case p.PRI && p.IdealFixup:
		return "pri-ideal-lazy"
	case p.PRI && p.CkptRefCount:
		return "pri-rc-ckpt"
	case p.PRI:
		return "pri-rc-lazy"
	case p.ER:
		return "er"
	}
	return "base"
}

// Named policies matching the bars of Figures 10 and 12.
var (
	PolicyBase         = Policy{}
	PolicyER           = Policy{ER: true}
	PolicyPRIRcCkpt    = Policy{PRI: true, CkptRefCount: true}
	PolicyPRIRcLazy    = Policy{PRI: true}
	PolicyPRIIdealCkpt = Policy{PRI: true, IdealFixup: true, CkptRefCount: true}
	PolicyPRIIdealLazy = Policy{PRI: true, IdealFixup: true}
	PolicyPRIPlusER    = Policy{PRI: true, CkptRefCount: true, ER: true}
	PolicyInfinite     = Policy{Infinite: true}
)

// AllPolicies lists the seven evaluated schemes in the paper's bar order.
var AllPolicies = []Policy{
	PolicyER,
	PolicyPRIRcCkpt,
	PolicyPRIRcLazy,
	PolicyPRIIdealCkpt,
	PolicyPRIIdealLazy,
	PolicyPRIPlusER,
	PolicyInfinite,
}

// Params sizes the rename machinery.
type Params struct {
	IntPRs int // integer physical registers (≥ 32)
	FPPRs  int // floating-point physical registers (≥ 32)
	// IntNarrowBits is the widest integer value (in significant bits,
	// two's complement) that may be inlined into a map entry: 7 for the
	// paper's 4-wide model, 10 for the 8-wide model.
	IntNarrowBits int
	// FPInline enables inlining FP values whose bit pattern is all zeroes
	// or all ones.
	FPInline bool
	Policy   Policy
}

// DefaultParams is the paper's 4-wide configuration: 64+64 physical
// registers and a 7-bit narrow budget.
func DefaultParams() Params {
	return Params{IntPRs: 64, FPPRs: 64, IntNarrowBits: 7, FPInline: true}
}

// Validate panics on nonsensical parameters; renaming needs at least one
// physical register per architected register.
func (p Params) Validate() {
	if p.IntPRs < isa.NumIntRegs {
		panic("core: IntPRs must be at least the architected count")
	}
	if p.FPPRs < isa.NumFPRegs {
		panic("core: FPPRs must be at least the architected count")
	}
	if p.IntNarrowBits < 0 || p.IntNarrowBits > 64 {
		panic("core: bad IntNarrowBits")
	}
}
