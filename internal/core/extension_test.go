package core

import (
	"testing"

	"prisim/internal/isa"
)

func TestWouldInlinePredictsWriteResult(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcLazy))
	a := isa.IntReg(5)

	al, _ := r.AllocDest(a, 0)
	if !r.WouldInline(al, 42) {
		t.Error("narrow value with live mapping should inline")
	}
	if r.WouldInline(al, 1<<20) {
		t.Error("wide value predicted to inline")
	}
	out := r.WriteResult(al, 42, 5)
	if !out.Inlined {
		t.Fatal("prediction contradicted by WriteResult")
	}

	// After a remap, the WAW check fails and the prediction must say no.
	b2, _ := r.AllocDest(a, 10)
	c3, _ := r.AllocDest(a, 11)
	_ = c3
	if r.WouldInline(b2, 3) {
		t.Error("remapped register predicted to inline")
	}
	if out := r.WriteResult(b2, 3, 20); out.Inlined {
		t.Error("WriteResult disagreed with prediction")
	}
}

func TestWouldInlineRespectsPolicy(t *testing.T) {
	r := NewRenamer(params(PolicyBase))
	al, _ := r.AllocDest(isa.IntReg(1), 0)
	if r.WouldInline(al, 1) {
		t.Error("base policy predicted inlining")
	}
	r2 := NewRenamer(params(PolicyPRIRcLazy))
	if r2.WouldInline(Allocation{Arch: isa.IntReg(1), PR: NoPR}, 1) {
		t.Error("NoPR allocation predicted to inline")
	}
}

func TestWrittenLiveTracking(t *testing.T) {
	r := NewRenamer(params(PolicyBase))
	if got := r.WrittenLive(false); got != isa.NumIntRegs {
		t.Fatalf("initial written-live = %d, want %d (committed state)", got, isa.NumIntRegs)
	}
	a := isa.IntReg(3)
	al, _ := r.AllocDest(a, 0)
	if got := r.WrittenLive(false); got != isa.NumIntRegs {
		t.Errorf("allocation changed written-live to %d", got)
	}
	r.WriteResult(al, 123456789, 5)
	if got := r.WrittenLive(false); got != isa.NumIntRegs+1 {
		t.Errorf("after write, written-live = %d", got)
	}
	w, _ := r.AllocDest(a, 10)
	r.CommitRelease(w.Old, 20) // releases al's register
	if got := r.WrittenLive(false); got != isa.NumIntRegs {
		t.Errorf("after release, written-live = %d", got)
	}
	r.CheckInvariants()
}

func TestWrittenLivePRIInline(t *testing.T) {
	// An inlined narrow result releases its register in the same call, so
	// written-live ends where it started.
	r := NewRenamer(params(PolicyPRIRcLazy))
	base := r.WrittenLive(false)
	al, _ := r.AllocDest(isa.IntReg(4), 0)
	out := r.WriteResult(al, 7, 5)
	if !out.Freed {
		t.Fatal("expected immediate inline free")
	}
	if got := r.WrittenLive(false); got != base {
		t.Errorf("written-live = %d, want %d", got, base)
	}
}
