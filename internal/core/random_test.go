package core

import (
	"fmt"
	"math/rand"
	"testing"

	"prisim/internal/isa"
)

// randomDriver models the pipeline's usage contract: instructions rename in
// order (sources then destination then checkpoint for branches), execute and
// retire out of order, and commit in order; mispredicted branches restore
// their checkpoint and squash everything younger. After thousands of random
// interleavings under every policy, the renamer's invariants must hold and
// no physical register may leak.
type rdInst struct {
	srcs     []Operand
	released []bool
	alloc    Allocation
	hasDest  bool
	ckpt     *Checkpoint
	retired  bool
	value    uint64
}

func TestRandomizedPipelineContract(t *testing.T) {
	// Every combination of the five policy bits, not just the paper's
	// named schemes: cross-feature interactions (e.g. ER with lazy PRI
	// checkpoint patching) have bitten before.
	var policies []Policy
	for bits := 0; bits < 32; bits++ {
		policies = append(policies, Policy{
			PRI:          bits&1 != 0,
			IdealFixup:   bits&2 != 0,
			CkptRefCount: bits&4 != 0,
			ER:           bits&8 != 0,
			Infinite:     bits&16 != 0,
		})
	}
	for _, pol := range policies {
		pol := pol
		t.Run(fmt.Sprintf("%s-%+v", pol.Name(), pol), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(42))
			cfg := DefaultParams()
			cfg.Policy = pol
			r := NewRenamer(cfg)
			if pol.IdealFixup {
				// The pipeline converts stale consumers instantly; the
				// driver mimics it by releasing every unreleased read of
				// the fixed-up register.
				var inFlight []*rdInst
				r.OnFixup = func(fp bool, pr PhysReg, value uint64) {
					for _, in := range inFlight {
						for i, op := range in.srcs {
							if !in.released[i] && op.Kind == OperandPR &&
								op.PR == pr && op.Arch.IsFP() == fp {
								in.released[i] = true
								r.ReleaseRead(op, 0, false)
							}
						}
					}
				}
				defer func() { inFlight = nil }()
				runRandomDriver(t, r, rng, &inFlight)
				return
			}
			var inFlight []*rdInst
			runRandomDriver(t, r, rng, &inFlight)
		})
	}
}

func runRandomDriver(t *testing.T, r *Renamer, rng *rand.Rand, inFlight *[]*rdInst) {
	now := uint64(0)
	commitUpTo := func(n int) {
		for i := 0; i < n && len(*inFlight) > 0; i++ {
			in := (*inFlight)[0]
			if !in.retired {
				return
			}
			for j, op := range in.srcs {
				if !in.released[j] {
					in.released[j] = true
					r.ReleaseRead(op, now, true)
				}
			}
			if in.ckpt != nil {
				r.ResolveCheckpoint(in.ckpt, now)
				in.ckpt = nil
			}
			if in.hasDest {
				r.CommitRelease(in.alloc.Old, now)
			}
			*inFlight = (*inFlight)[1:]
		}
	}

	for step := 0; step < 20000; step++ {
		now++
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // rename a new instruction
			in := &rdInst{}
			nsrc := rng.Intn(3)
			for i := 0; i < nsrc; i++ {
				a := isa.Reg(rng.Intn(isa.NumArchRegs))
				if a == isa.RZero {
					a = isa.IntReg(1)
				}
				in.srcs = append(in.srcs, r.LookupSrc(a))
				in.released = append(in.released, false)
			}
			if rng.Intn(4) > 0 { // 75% have a destination
				a := isa.Reg(rng.Intn(isa.NumArchRegs))
				if a == isa.RZero {
					a = isa.IntReg(2)
				}
				if al, ok := r.AllocDest(a, now); ok {
					in.alloc = al
					in.hasDest = true
					in.value = uint64(rng.Int63())
					if rng.Intn(3) == 0 {
						in.value = uint64(rng.Intn(100)) // narrow
					}
				}
			}
			if rng.Intn(6) == 0 { // branch: checkpoint
				in.ckpt = r.TakeCheckpoint()
			}
			*inFlight = append(*inFlight, in)
		case 4, 5, 6: // retire a random unretired instruction (writeback)
			for _, idx := range rng.Perm(len(*inFlight)) {
				in := (*inFlight)[idx]
				if in.retired {
					continue
				}
				for j, op := range in.srcs { // reads happen before writeback
					if !in.released[j] && rng.Intn(2) == 0 {
						in.released[j] = true
						r.ReleaseRead(op, now, true)
					}
				}
				if in.hasDest {
					r.WriteResult(in.alloc, in.value, now)
				}
				in.retired = true
				break
			}
		case 7: // commit a few from the head
			commitUpTo(1 + rng.Intn(4))
		case 8: // misprediction: recover at a random checkpointed instruction
			bi := -1
			for _, idx := range rng.Perm(len(*inFlight)) {
				if (*inFlight)[idx].ckpt != nil {
					bi = idx
					break
				}
			}
			if bi < 0 {
				continue
			}
			br := (*inFlight)[bi]
			r.RestoreCheckpoint(br.ckpt, now)
			br.ckpt = nil
			// Squash everything younger, youngest first.
			for i := len(*inFlight) - 1; i > bi; i-- {
				y := (*inFlight)[i]
				for j, op := range y.srcs {
					if !y.released[j] {
						y.released[j] = true
						r.ReleaseRead(op, now, false)
					}
				}
				if y.hasDest {
					r.SquashUndo(y.alloc, now)
				}
				if y.ckpt != nil {
					// Discarded wholesale by RestoreCheckpoint.
					y.ckpt = nil
				}
			}
			*inFlight = (*inFlight)[:bi+1]
		case 9:
			r.CheckInvariants()
		}
	}
	// Drain: retire and commit everything.
	for _, in := range *inFlight {
		if !in.retired {
			if in.hasDest {
				r.WriteResult(in.alloc, in.value, now)
			}
			in.retired = true
		}
	}
	commitUpTo(len(*inFlight))
	if len(*inFlight) != 0 {
		t.Fatalf("drain left %d instructions", len(*inFlight))
	}
	r.CheckInvariants()
	if r.LiveCheckpoints() != 0 {
		t.Errorf("%d checkpoints leaked", r.LiveCheckpoints())
	}
	// With everything committed, occupancy can be at most one register per
	// architected register — and under PRI it may be lower, because
	// committed values can live as inlined map entries. (CheckInvariants
	// above already proved conservation: free + allocated == total.)
	if !r.Params().Policy.Infinite {
		iOcc, fOcc := r.Occupancy()
		if iOcc > isa.NumIntRegs || fOcc > isa.NumFPRegs {
			t.Errorf("occupancy %d/%d exceeds architected counts", iOcc, fOcc)
		}
		if iOcc < isa.NumIntRegs && !r.Params().Policy.PRI {
			t.Errorf("non-PRI policy lost %d mappings", isa.NumIntRegs-iOcc)
		}
	}
}
