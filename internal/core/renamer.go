package core

import (
	"fmt"

	"prisim/internal/isa"
)

// OperandKind classifies what a source-operand map lookup produced.
type OperandKind uint8

// Operand kinds.
const (
	OperandZero   OperandKind = iota // the hardwired zero register
	OperandInline                    // an immediate inlined in the map entry
	OperandPR                        // a physical register pointer
)

// Operand is the payload-RAM view of one renamed source operand: either a
// ready immediate (zero register or inlined value) or a physical register
// pointer plus the generation tag used for safe reference release.
type Operand struct {
	Kind  OperandKind
	Value uint64
	Arch  isa.Reg
	PR    PhysReg
	Gen   uint32
}

// Ready reports whether the operand needs no register read at all.
func (o Operand) Ready() bool { return o.Kind != OperandPR }

// OldMapping records the mapping displaced by a destination rename; the
// commit-time release rule frees it when the displacing writer commits.
type OldMapping struct {
	Arch  isa.Reg
	Entry MapEntry
	Gen   uint32 // generation of Entry.PR at displacement time
}

// Allocation describes a freshly allocated destination register.
type Allocation struct {
	Arch isa.Reg
	PR   PhysReg
	Gen  uint32
	Old  OldMapping
}

// InlineOutcome reports what WriteResult did with a retiring value.
type InlineOutcome struct {
	Inlined   bool // value moved into the map entry
	Freed     bool // physical register returned to the free list
	Deferred  bool // inline succeeded but the free awaits counter drain
	FixupNeed bool // ideal mode: pipeline must convert stale consumers now
}

// Checkpoint is a shadow copy of both map tables, taken at every
// (potentially) mispredictable control instruction.
type Checkpoint struct {
	id       uint64
	intMap   []MapEntry
	fpMap    []MapEntry
	refsHeld bool
	released bool
}

// Renamer is the complete rename stage state: two register classes and the
// checkpoint stack.
type Renamer struct {
	cfg      Params
	intRF    *regFile
	fpRF     *regFile
	ckpts    []*Checkpoint // oldest first
	ckptPool []*Checkpoint // released checkpoints kept for reuse
	nextID   uint64

	// OnFixup, when set and the policy is IdealFixup, is invoked when a
	// value is inlined so the pipeline can instantly convert in-flight
	// consumers of (class, pr) into immediate operands. The callback must
	// call ReleaseRead for each consumer it converts.
	OnFixup func(fp bool, pr PhysReg, value uint64)
}

// NewRenamer builds the rename machinery for the given parameters.
func NewRenamer(cfg Params) *Renamer {
	cfg.Validate()
	r := &Renamer{cfg: cfg}
	r.intRF = newRegFile("int", isa.NumIntRegs, cfg.IntPRs, &r.cfg)
	r.fpRF = newRegFile("fp", isa.NumFPRegs, cfg.FPPRs, &r.cfg)
	return r
}

// Params returns the renamer's configuration.
func (r *Renamer) Params() Params { return r.cfg }

func (r *Renamer) file(a isa.Reg) *regFile {
	if a.IsFP() {
		return r.fpRF
	}
	return r.intRF
}

func (r *Renamer) fileFP(fp bool) *regFile {
	if fp {
		return r.fpRF
	}
	return r.intRF
}

// IntStats and FPStats expose the per-class lifetime statistics.
func (r *Renamer) IntStats() *LifetimeStats { return &r.intRF.Stats }

// FPStats exposes the floating-point lifetime statistics.
func (r *Renamer) FPStats() *LifetimeStats { return &r.fpRF.Stats }

// Occupancy returns the current number of allocated registers per class.
func (r *Renamer) Occupancy() (intRegs, fpRegs int) {
	return r.intRF.Allocated(), r.fpRF.Allocated()
}

// WrittenLive returns, per class, how many allocated registers hold a
// produced value — the physical-register demand under the virtual-physical
// delayed-allocation extension, where a register is bound only at
// writeback.
func (r *Renamer) WrittenLive(fp bool) int { return r.fileFP(fp).nWritten }

// FreeCount returns the allocatable register count for the class of a.
func (r *Renamer) FreeCount(fp bool) int { return r.fileFP(fp).FreeCount() }

// LookupSrc renames one source operand, incrementing the reader reference
// count when the operand is a register pointer. Every OperandPR returned
// must eventually be balanced by exactly one ReleaseRead (on successful
// read, squash, or ideal fix-up).
func (r *Renamer) LookupSrc(a isa.Reg) Operand {
	if a == isa.RZero {
		return Operand{Kind: OperandZero, Arch: a}
	}
	rf := r.file(a)
	e := rf.mapTab[a.Index()]
	if e.Inlined {
		return Operand{Kind: OperandInline, Value: e.Value, Arch: a}
	}
	st := &rf.prs[e.PR]
	st.readers++
	return Operand{Kind: OperandPR, Arch: a, PR: e.PR, Gen: st.gen}
}

// ReleaseRead balances a LookupSrc that returned a register pointer. now is
// the cycle of the (actual or abandoned) read, which advances the
// register's last-read stamp on a true read (read=true).
func (r *Renamer) ReleaseRead(op Operand, now uint64, read bool) {
	if op.Kind != OperandPR {
		return
	}
	rf := r.fileFP(op.Arch.IsFP())
	st := &rf.prs[op.PR]
	if read {
		st.everRead = true
		if now > st.lastReadCycle {
			st.lastReadCycle = now
		}
	}
	rf.decReader(op.PR, now)
}

// CanAllocate reports whether a destination register of the given class can
// be renamed this cycle.
func (r *Renamer) CanAllocate(fp bool) bool { return r.fileFP(fp).FreeCount() > 0 }

// AllocDest renames a destination register: allocates a new physical
// register, installs the mapping, and returns the displaced mapping for the
// commit-time release rule. ok is false when the free list is empty (the
// rename stage must stall).
func (r *Renamer) AllocDest(a isa.Reg, now uint64) (Allocation, bool) {
	if a == isa.RZero {
		panic("core: rename of the zero register")
	}
	rf := r.file(a)
	pr, gen, ok := rf.allocate(a, now)
	if !ok {
		return Allocation{}, false
	}
	old := rf.mapTab[a.Index()]
	oldGen := uint32(0)
	if !old.Inlined {
		st := &rf.prs[old.PR]
		oldGen = st.gen
		st.unmappedCur = true
		if r.cfg.Policy.ER {
			rf.maybeERFree(old.PR, now)
		}
		rf.maybeFree(old.PR, now)
	}
	rf.mapTab[a.Index()] = MapEntry{PR: pr}
	return Allocation{
		Arch: a,
		PR:   pr,
		Gen:  gen,
		Old:  OldMapping{Arch: a, Entry: old, Gen: oldGen},
	}, true
}

// InlineDest renames a destination whose value is already known narrow (the
// paper's Section 6 future-work extension: a load-immediate of a narrow
// value never allocates a physical register). The returned Allocation has
// PR == NoPR; its Old mapping still participates in the commit release rule.
func (r *Renamer) InlineDest(a isa.Reg, value uint64, now uint64) Allocation {
	if a == isa.RZero {
		panic("core: rename of the zero register")
	}
	rf := r.file(a)
	old := rf.mapTab[a.Index()]
	oldGen := uint32(0)
	if !old.Inlined {
		st := &rf.prs[old.PR]
		oldGen = st.gen
		st.unmappedCur = true
		if r.cfg.Policy.ER {
			rf.maybeERFree(old.PR, now)
		}
		rf.maybeFree(old.PR, now)
	}
	rf.mapTab[a.Index()] = MapEntry{Inlined: true, Value: value}
	rf.Stats.InlinedResults++
	return Allocation{Arch: a, PR: NoPR, Old: OldMapping{Arch: a, Entry: old, Gen: oldGen}}
}

// CommitRelease applies the conventional release rule when the displacing
// writer commits: the previous physical register for the architected
// register is freed. Thanks to generation tags this tolerates registers
// already freed early by PRI or ER.
func (r *Renamer) CommitRelease(old OldMapping, now uint64) {
	if old.Entry.Inlined || old.Entry.PR == NoPR {
		return
	}
	r.file(old.Arch).release(old.Entry.PR, old.Gen, now)
}

// SquashUndo returns a squashed instruction's destination register to the
// free list. Call RestoreCheckpoint first so no live checkpoint still
// references the register. Inlined destinations (PR == NoPR) are no-ops.
func (r *Renamer) SquashUndo(alloc Allocation, now uint64) {
	if alloc.PR == NoPR {
		return
	}
	r.file(alloc.Arch).release(alloc.PR, alloc.Gen, now)
}

// WriteResult runs the retire-stage PRI logic for a produced value: stamps
// the write, performs the narrowness and WAW checks, updates the map entry,
// and frees (or schedules freeing of) the physical register. It must be
// called for every produced result, PRI or not, because it also maintains
// the complete flag and lifetime stamps.
func (r *Renamer) WriteResult(alloc Allocation, value uint64, now uint64) InlineOutcome {
	if alloc.PR == NoPR {
		return InlineOutcome{}
	}
	rf := r.file(alloc.Arch)
	st := &rf.prs[alloc.PR]
	var out InlineOutcome
	if !st.allocated || st.gen != alloc.Gen {
		// The register was already released (e.g. squash raced ahead in
		// the caller); nothing to record.
		return out
	}
	if !st.written {
		st.written = true
		st.writeCycle = now
		st.complete = true
		rf.nWritten++
	}
	if r.cfg.Policy.ER {
		rf.maybeERFree(alloc.PR, now)
		if !st.allocated {
			out.Freed = true
			return out
		}
	}
	if !r.cfg.Policy.PRI {
		return out
	}
	if !r.narrow(alloc.Arch, value) {
		return out
	}
	// WAW check (Figure 7): inline only if the current map entry still
	// points at this register.
	e := rf.mapTab[alloc.Arch.Index()]
	if e.Inlined || e.PR != alloc.PR {
		rf.Stats.WAWSuppressed++
		return out
	}
	rf.mapTab[alloc.Arch.Index()] = MapEntry{Inlined: true, Value: value}
	st.unmappedCur = true
	rf.Stats.InlinedResults++
	out.Inlined = true

	if !r.cfg.Policy.CkptRefCount {
		// Lazy checkpoint update: patch every live shadow copy whose entry
		// still names this register (the paper's background update logic,
		// triggered by the second-write-port write).
		r.patchCheckpoints(alloc.Arch, alloc.PR, value, now)
		if !st.allocated {
			// Dropping the patched checkpoints' references (held when ER
			// is also enabled) can complete the free on the spot.
			out.Freed = true
			return out
		}
	}
	if r.cfg.Policy.IdealFixup && st.readers > 0 {
		out.FixupNeed = true
		if r.OnFixup != nil {
			r.OnFixup(alloc.Arch.IsFP(), alloc.PR, value)
		}
		if st.readers > 0 {
			panic(fmt.Sprintf("core: ideal fixup left %d readers on p%d", st.readers, alloc.PR))
		}
	}
	if st.readers > 0 || st.ckptRefs > 0 {
		st.wantFree = true
		rf.Stats.DeferredFrees++
		out.Deferred = true
		return out
	}
	rf.Stats.EarlyFrees++
	rf.release(alloc.PR, st.gen, now)
	out.Freed = true
	return out
}

// narrow applies the paper's inlining condition for the operand class.
func (r *Renamer) narrow(a isa.Reg, v uint64) bool {
	if a.IsFP() {
		return r.cfg.FPInline && isa.FPTrivial(v)
	}
	return isa.FitsSigned(v, r.cfg.IntNarrowBits)
}

// Narrow reports whether a value produced for architected register a would
// qualify for inlining under the current parameters (for statistics).
func (r *Renamer) Narrow(a isa.Reg, v uint64) bool { return r.narrow(a, v) }

// WouldInline reports whether WriteResult called right now for this
// allocation and value would move the value into the map: the policy has
// PRI, the value is narrow, and the WAW check (map entry still names this
// register) passes. The delayed-allocation writeback gate uses it to let
// values that will never occupy a register bypass the bind stall.
func (r *Renamer) WouldInline(alloc Allocation, value uint64) bool {
	if !r.cfg.Policy.PRI || alloc.PR == NoPR || !r.narrow(alloc.Arch, value) {
		return false
	}
	rf := r.file(alloc.Arch)
	st := &rf.prs[alloc.PR]
	if !st.allocated || st.gen != alloc.Gen {
		return false
	}
	e := rf.mapTab[alloc.Arch.Index()]
	return !e.Inlined && e.PR == alloc.PR
}

func (r *Renamer) patchCheckpoints(a isa.Reg, pr PhysReg, value uint64, now uint64) {
	idx := a.Index()
	rf := r.file(a)
	// Walk a snapshot: dropping a reference below can complete an early
	// free, but never mutates the checkpoint stack itself.
	for _, ck := range r.ckpts {
		m := ck.intMap
		if a.IsFP() {
			m = ck.fpMap
		}
		if !m[idx].Inlined && m[idx].PR == pr {
			m[idx] = MapEntry{Inlined: true, Value: value}
			// A checkpoint that held a reference (ER combined with lazy
			// PRI) no longer names the register: release the pin, or the
			// reference leaks and the register is stranded forever.
			if ck.refsHeld {
				rf.decCkptRef(pr, now)
			}
		}
	}
}

// TakeCheckpoint shadows both map tables. Under checkpoint reference
// counting, every named register is pinned until the checkpoint dies.
// Checkpoint objects and their shadow-map arrays come from a pool refilled
// by ResolveCheckpoint/RestoreCheckpoint, so steady-state checkpoint
// traffic allocates nothing; callers must drop their pointer once the
// checkpoint is released.
func (r *Renamer) TakeCheckpoint() *Checkpoint {
	r.nextID++
	var ck *Checkpoint
	if n := len(r.ckptPool); n > 0 {
		ck = r.ckptPool[n-1]
		r.ckptPool[n-1] = nil
		r.ckptPool = r.ckptPool[:n-1]
		ck.id = r.nextID
		ck.intMap = append(ck.intMap[:0], r.intRF.mapTab...)
		ck.fpMap = append(ck.fpMap[:0], r.fpRF.mapTab...)
		ck.refsHeld, ck.released = false, false
	} else {
		ck = &Checkpoint{
			id:     r.nextID,
			intMap: append([]MapEntry(nil), r.intRF.mapTab...),
			fpMap:  append([]MapEntry(nil), r.fpRF.mapTab...),
		}
	}
	if r.cfg.Policy.usesCkptRefs() {
		ck.refsHeld = true
		addRefs(r.intRF, ck.intMap)
		addRefs(r.fpRF, ck.fpMap)
	}
	r.ckpts = append(r.ckpts, ck)
	return ck
}

func addRefs(rf *regFile, m []MapEntry) {
	for _, e := range m {
		if !e.Inlined && e.PR != NoPR {
			rf.prs[e.PR].ckptRefs++
		}
	}
}

func (r *Renamer) dropRefs(ck *Checkpoint, now uint64) {
	if !ck.refsHeld {
		return
	}
	ck.refsHeld = false
	for _, e := range ck.intMap {
		if !e.Inlined && e.PR != NoPR {
			r.intRF.decCkptRef(e.PR, now)
		}
	}
	for _, e := range ck.fpMap {
		if !e.Inlined && e.PR != NoPR {
			r.fpRF.decCkptRef(e.PR, now)
		}
	}
}

// PrewarmCheckpoints grows the checkpoint pool to hold at least n released
// checkpoints with their shadow-map arrays already sized, so the first n
// in-flight branches allocate nothing. Callers size n to the maximum number
// of simultaneously live checkpoints (one per in-flight control
// instruction, bounded by the reorder window).
func (r *Renamer) PrewarmCheckpoints(n int) {
	for len(r.ckptPool) < n {
		r.ckptPool = append(r.ckptPool, &Checkpoint{
			intMap: make([]MapEntry, len(r.intRF.mapTab)),
			fpMap:  make([]MapEntry, len(r.fpRF.mapTab)),
		})
	}
}

// ResolveCheckpoint releases a checkpoint whose control instruction resolved
// as correctly predicted.
func (r *Renamer) ResolveCheckpoint(ck *Checkpoint, now uint64) {
	if ck.released {
		return
	}
	ck.released = true
	r.removeCkpt(ck)
	r.dropRefs(ck, now)
	r.ckptPool = append(r.ckptPool, ck)
}

// RestoreCheckpoint recovers from a misprediction at ck's control
// instruction: all younger checkpoints are discarded, both map tables are
// restored, and the per-register flags are rebuilt. The caller must then
// SquashUndo every squashed instruction's allocation.
func (r *Renamer) RestoreCheckpoint(ck *Checkpoint, now uint64) {
	if ck.released {
		panic("core: restore of a released checkpoint")
	}
	// Early-free decisions made against the mid-restore map would be
	// wrong; freeze them and finish with a consistent sweep.
	r.intRF.frozen, r.fpRF.frozen = true, true
	// Discard younger checkpoints (they belong to squashed instructions).
	for i := len(r.ckpts) - 1; i >= 0; i-- {
		c := r.ckpts[i]
		r.ckpts = r.ckpts[:i]
		if c == ck {
			break
		}
		c.released = true
		r.dropRefs(c, now)
		r.ckptPool = append(r.ckptPool, c)
	}
	copy(r.intRF.mapTab, ck.intMap)
	copy(r.fpRF.mapTab, ck.fpMap)
	ck.released = true
	r.dropRefs(ck, now)
	r.ckptPool = append(r.ckptPool, ck)
	r.intRF.frozen, r.fpRF.frozen = false, false
	r.intRF.recomputeUnmapped(now)
	r.fpRF.recomputeUnmapped(now)
}

func (r *Renamer) removeCkpt(ck *Checkpoint) {
	for i, c := range r.ckpts {
		if c == ck {
			r.ckpts = append(r.ckpts[:i], r.ckpts[i+1:]...)
			return
		}
	}
}

// LiveCheckpoints returns the number of outstanding shadow maps.
func (r *Renamer) LiveCheckpoints() int { return len(r.ckpts) }

// MapEntryFor returns the current map entry for an architected register
// (primarily for tests and debug output).
func (r *Renamer) MapEntryFor(a isa.Reg) MapEntry {
	return r.file(a).mapTab[a.Index()]
}

// CheckInvariants panics if internal bookkeeping is inconsistent; tests run
// it after randomized operation sequences.
func (r *Renamer) CheckInvariants() {
	// Checkpoint references must match the live checkpoint stack exactly:
	// a register pinned by more references than live shadow maps name it
	// is stranded forever (the deadlock class the lazy-patch path once
	// leaked).
	wantRefs := map[*regFile]map[PhysReg]int32{
		r.intRF: {}, r.fpRF: {},
	}
	for _, ck := range r.ckpts {
		if !ck.refsHeld {
			continue
		}
		for _, e := range ck.intMap {
			if !e.Inlined && e.PR != NoPR {
				wantRefs[r.intRF][e.PR]++
			}
		}
		for _, e := range ck.fpMap {
			if !e.Inlined && e.PR != NoPR {
				wantRefs[r.fpRF][e.PR]++
			}
		}
	}
	for _, rf := range []*regFile{r.intRF, r.fpRF} {
		for p := range rf.prs {
			if got, want := rf.prs[p].ckptRefs, wantRefs[rf][PhysReg(p)]; got != want {
				panic(fmt.Sprintf("core: %s p%d has %d checkpoint refs, live checkpoints hold %d",
					rf.name, p, got, want))
			}
		}
	}
	for _, rf := range []*regFile{r.intRF, r.fpRF} {
		mapped := make(map[PhysReg]bool)
		for a, e := range rf.mapTab {
			if e.Inlined {
				continue
			}
			if e.PR < 0 || int(e.PR) >= len(rf.prs) {
				panic(fmt.Sprintf("core: %s map[%d] names bad register %d", rf.name, a, e.PR))
			}
			if mapped[e.PR] {
				panic(fmt.Sprintf("core: %s p%d mapped twice", rf.name, e.PR))
			}
			mapped[e.PR] = true
			st := &rf.prs[e.PR]
			if !st.allocated {
				panic(fmt.Sprintf("core: %s map[%d] names free register p%d", rf.name, a, e.PR))
			}
			if st.unmappedCur {
				panic(fmt.Sprintf("core: %s p%d mapped but flagged unmapped", rf.name, e.PR))
			}
		}
		nAlloc := 0
		for p := range rf.prs {
			st := &rf.prs[p]
			if st.allocated {
				nAlloc++
			}
			if st.readers < 0 || st.ckptRefs < 0 {
				panic(fmt.Sprintf("core: %s p%d negative counters", rf.name, p))
			}
			if !st.allocated && (st.readers != 0 && !r.cfg.Policy.IdealFixup) {
				// Readers on a free register is the WAR violation PRI's
				// guards exist to prevent — except transiently under the
				// ideal scheme, which fixes consumers up at inline time.
				panic(fmt.Sprintf("core: %s free p%d has %d readers", rf.name, p, st.readers))
			}
		}
		if nAlloc != rf.nAlloc {
			panic(fmt.Sprintf("core: %s occupancy drifted: counted %d, tracked %d", rf.name, nAlloc, rf.nAlloc))
		}
		free := make(map[PhysReg]bool)
		for _, p := range rf.free[rf.freeHd:] {
			if free[p] {
				panic(fmt.Sprintf("core: %s free list holds p%d twice", rf.name, p))
			}
			free[p] = true
			if rf.prs[p].allocated {
				panic(fmt.Sprintf("core: %s allocated p%d on free list", rf.name, p))
			}
		}
		if !r.cfg.Policy.Infinite && len(free)+nAlloc != len(rf.prs) {
			panic(fmt.Sprintf("core: %s registers leaked: %d free + %d allocated != %d",
				rf.name, len(free), nAlloc, len(rf.prs)))
		}
	}
}
