package core

import (
	"testing"

	"prisim/internal/isa"
)

func params(p Policy) Params {
	cfg := DefaultParams()
	cfg.Policy = p
	return cfg
}

func TestInitialState(t *testing.T) {
	r := NewRenamer(params(PolicyBase))
	i, f := r.Occupancy()
	if i != isa.NumIntRegs || f != isa.NumFPRegs {
		t.Errorf("initial occupancy = %d, %d", i, f)
	}
	if r.FreeCount(false) != 32 || r.FreeCount(true) != 32 {
		t.Errorf("free = %d, %d", r.FreeCount(false), r.FreeCount(true))
	}
	// Every architected register maps to a complete physical register.
	op := r.LookupSrc(isa.IntReg(5))
	if op.Kind != OperandPR {
		t.Fatalf("lookup kind = %v", op.Kind)
	}
	r.ReleaseRead(op, 0, true)
	r.CheckInvariants()
}

func TestZeroRegisterLookup(t *testing.T) {
	r := NewRenamer(params(PolicyBase))
	op := r.LookupSrc(isa.RZero)
	if op.Kind != OperandZero || !op.Ready() {
		t.Errorf("zero lookup = %+v", op)
	}
}

func TestBaseAllocateCommitRelease(t *testing.T) {
	r := NewRenamer(params(PolicyBase))
	a := isa.IntReg(3)
	al, ok := r.AllocDest(a, 10)
	if !ok {
		t.Fatal("alloc failed")
	}
	if r.FreeCount(false) != 31 {
		t.Errorf("free after alloc = %d", r.FreeCount(false))
	}
	if e := r.MapEntryFor(a); e.Inlined || e.PR != al.PR {
		t.Errorf("map not updated: %+v", e)
	}
	// Old mapping released only at commit.
	r.WriteResult(al, 1234567890123, 20) // wide: no inlining even if PRI were on
	if r.FreeCount(false) != 31 {
		t.Error("released before commit")
	}
	r.CommitRelease(al.Old, 30)
	if r.FreeCount(false) != 32 {
		t.Error("commit release did not free")
	}
	st := r.IntStats()
	if st.Released != 1 {
		t.Errorf("released = %d", st.Released)
	}
	r.CheckInvariants()
}

func TestAllocExhaustion(t *testing.T) {
	r := NewRenamer(params(PolicyBase))
	a := isa.IntReg(1)
	for i := 0; i < 32; i++ {
		if _, ok := r.AllocDest(a, 0); !ok {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if r.CanAllocate(false) {
		t.Error("CanAllocate true with empty free list")
	}
	if _, ok := r.AllocDest(a, 0); ok {
		t.Error("alloc succeeded with empty free list")
	}
	r.CheckInvariants()
}

func TestInfinitePolicyNeverExhausts(t *testing.T) {
	r := NewRenamer(params(PolicyInfinite))
	a := isa.IntReg(1)
	for i := 0; i < 500; i++ {
		if _, ok := r.AllocDest(a, 0); !ok {
			t.Fatalf("infinite alloc %d failed", i)
		}
	}
	r.CheckInvariants()
}

func TestDuplicateFreeTolerance(t *testing.T) {
	cfg := params(PolicyPRIRcLazy)
	r := NewRenamer(cfg)
	a := isa.IntReg(4)
	producer, _ := r.AllocDest(a, 0)
	// Next writer renames before the producer retires.
	writer, _ := r.AllocDest(a, 5)
	// Producer retires narrow — but the map has moved on (WAW check), so
	// no inline.
	out := r.WriteResult(producer, 3, 10)
	if out.Inlined {
		t.Error("inlined despite remap")
	}
	if r.IntStats().WAWSuppressed != 1 {
		t.Error("WAW suppression not counted")
	}
	// Writer's commit frees the producer's register (normal rule).
	free0 := r.FreeCount(false)
	r.CommitRelease(writer.Old, 20)
	if r.FreeCount(false) != free0+1 {
		t.Error("commit release failed")
	}
	// A second, duplicate release of the same register is a no-op.
	r.CommitRelease(writer.Old, 21)
	if r.FreeCount(false) != free0+1 {
		t.Error("duplicate release changed the free list")
	}
	if r.IntStats().DuplicateFrees == 0 {
		t.Error("duplicate free not counted")
	}
	r.CheckInvariants()
}

func TestPRIInlineAndEarlyFree(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcLazy))
	a := isa.IntReg(7)
	al, _ := r.AllocDest(a, 0)
	free0 := r.FreeCount(false)
	out := r.WriteResult(al, 42, 10) // 42 fits in 7 bits
	if !out.Inlined || !out.Freed {
		t.Fatalf("outcome = %+v", out)
	}
	if r.FreeCount(false) != free0+1 {
		t.Error("early free did not return register")
	}
	e := r.MapEntryFor(a)
	if !e.Inlined || e.Value != 42 {
		t.Errorf("map entry = %+v", e)
	}
	// Subsequent consumers read the immediate.
	op := r.LookupSrc(a)
	if op.Kind != OperandInline || op.Value != 42 {
		t.Errorf("lookup = %+v", op)
	}
	// The displaced-mapping commit release later is a harmless duplicate.
	r.CommitRelease(OldMapping{Arch: a, Entry: MapEntry{PR: al.PR}, Gen: al.Gen}, 50)
	r.CheckInvariants()
}

func TestPRINegativeNarrowValues(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcLazy))
	a := isa.IntReg(2)
	al, _ := r.AllocDest(a, 0)
	out := r.WriteResult(al, ^uint64(0) /* -1 */, 5)
	if !out.Inlined {
		t.Error("-1 should inline in 7 bits")
	}
	al2, _ := r.AllocDest(a, 10)
	out = r.WriteResult(al2, 64, 15) // 64 needs 8 bits signed: too wide for 7
	if out.Inlined {
		t.Error("64 should not inline in 7 bits")
	}
}

func TestPRIFPTrivialOnly(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcLazy))
	a := isa.FPReg(3)
	al, _ := r.AllocDest(a, 0)
	if out := r.WriteResult(al, 0, 1); !out.Inlined {
		t.Error("FP zero pattern should inline")
	}
	al2, _ := r.AllocDest(a, 2)
	if out := r.WriteResult(al2, ^uint64(0), 3); !out.Inlined {
		t.Error("FP all-ones pattern should inline")
	}
	al3, _ := r.AllocDest(a, 4)
	if out := r.WriteResult(al3, 0x3FF0000000000000, 5); out.Inlined {
		t.Error("FP 1.0 should not inline")
	}
	// With FPInline off, nothing inlines.
	cfg := params(PolicyPRIRcLazy)
	cfg.FPInline = false
	r2 := NewRenamer(cfg)
	al4, _ := r2.AllocDest(a, 0)
	if out := r2.WriteResult(al4, 0, 1); out.Inlined {
		t.Error("FPInline=false still inlined")
	}
}

func TestRefcountDefersFreeUntilReadersDrain(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcLazy))
	a := isa.IntReg(9)
	al, _ := r.AllocDest(a, 0)
	// A consumer renames its source before the producer retires.
	op := r.LookupSrc(a)
	if op.Kind != OperandPR || op.PR != al.PR {
		t.Fatalf("consumer operand = %+v", op)
	}
	free0 := r.FreeCount(false)
	out := r.WriteResult(al, 5, 10)
	if !out.Inlined || out.Freed || !out.Deferred {
		t.Fatalf("outcome = %+v", out)
	}
	if r.FreeCount(false) != free0 {
		t.Error("freed while a reader holds a stale pointer (WAR violation)")
	}
	// Reader finishes: the free completes.
	r.ReleaseRead(op, 20, true)
	if r.FreeCount(false) != free0+1 {
		t.Error("free did not complete after reader drained")
	}
	if r.IntStats().DeferredFrees != 1 {
		t.Error("deferred free not counted")
	}
	r.CheckInvariants()
}

func TestIdealFixupConvertsReaders(t *testing.T) {
	r := NewRenamer(params(PolicyPRIIdealLazy))
	a := isa.IntReg(9)
	var fixups []uint64
	var pending []Operand
	r.OnFixup = func(fp bool, pr PhysReg, value uint64) {
		for _, op := range pending {
			if op.PR == pr && op.Arch.IsFP() == fp {
				fixups = append(fixups, value)
				r.ReleaseRead(op, 10, false)
			}
		}
		pending = nil
	}
	al, _ := r.AllocDest(a, 0)
	pending = append(pending, r.LookupSrc(a))
	free0 := r.FreeCount(false)
	out := r.WriteResult(al, 5, 10)
	if !out.Inlined || !out.Freed || !out.FixupNeed {
		t.Fatalf("outcome = %+v", out)
	}
	if r.FreeCount(false) != free0+1 {
		t.Error("ideal mode did not free instantly")
	}
	if len(fixups) != 1 || fixups[0] != 5 {
		t.Errorf("fixups = %v", fixups)
	}
	r.CheckInvariants()
}

func TestCkptRefCountPinsRegisters(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcCkpt))
	a := isa.IntReg(6)
	al, _ := r.AllocDest(a, 0)
	ck := r.TakeCheckpoint() // shadow map names al.PR
	free0 := r.FreeCount(false)
	out := r.WriteResult(al, 7, 10)
	if !out.Inlined || out.Freed || !out.Deferred {
		t.Fatalf("outcome = %+v", out)
	}
	if r.FreeCount(false) != free0 {
		t.Error("freed while checkpoint references register")
	}
	// Branch resolves correctly: checkpoint dies, free completes.
	r.ResolveCheckpoint(ck, 20)
	if r.FreeCount(false) != free0+1 {
		t.Error("free did not complete after checkpoint release")
	}
	r.CheckInvariants()
}

func TestLazyCheckpointPatching(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcLazy))
	a := isa.IntReg(6)
	al, _ := r.AllocDest(a, 0)
	ck := r.TakeCheckpoint()
	out := r.WriteResult(al, 7, 10)
	if !out.Inlined || !out.Freed {
		t.Fatalf("outcome = %+v (lazy should free with no readers)", out)
	}
	// Misprediction at the checkpointed branch: restore must see the
	// inlined value, not a stale pointer to the freed register.
	r.RestoreCheckpoint(ck, 20)
	e := r.MapEntryFor(a)
	if !e.Inlined || e.Value != 7 {
		t.Errorf("restored entry = %+v, want inlined 7", e)
	}
	r.CheckInvariants()
}

func TestRestoreCancelsPendingInlineFree(t *testing.T) {
	// Under ckptcount: producer inlines while a checkpoint taken *after*
	// its rename still maps arch->PR. On recovery to that checkpoint the
	// mapping is restored, so the pending free must be cancelled.
	r := NewRenamer(params(PolicyPRIRcCkpt))
	a := isa.IntReg(6)
	al, _ := r.AllocDest(a, 0)
	ck := r.TakeCheckpoint()
	out := r.WriteResult(al, 7, 10)
	if out.Freed || !out.Deferred {
		t.Fatalf("outcome = %+v", out)
	}
	free0 := r.FreeCount(false)
	r.RestoreCheckpoint(ck, 20)
	e := r.MapEntryFor(a)
	if e.Inlined || e.PR != al.PR {
		t.Errorf("restored entry = %+v, want p%d", e, al.PR)
	}
	if r.FreeCount(false) != free0 {
		t.Error("register freed despite restored mapping")
	}
	// It frees later by the normal commit rule.
	w, _ := r.AllocDest(a, 30)
	r.CommitRelease(w.Old, 40)
	if r.FreeCount(false) != free0 {
		t.Errorf("free count after writer = %d, want %d", r.FreeCount(false), free0)
	}
	r.CheckInvariants()
}

func TestRestoreDiscardsYoungerCheckpoints(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcCkpt))
	a := isa.IntReg(2)
	ck1 := r.TakeCheckpoint()
	al2, _ := r.AllocDest(a, 0)
	r.TakeCheckpoint() // ck2, younger — discarded by the restore
	r.TakeCheckpoint() // ck3
	if r.LiveCheckpoints() != 3 {
		t.Fatalf("live = %d", r.LiveCheckpoints())
	}
	r.RestoreCheckpoint(ck1, 10)
	if r.LiveCheckpoints() != 0 {
		t.Errorf("live after restore = %d", r.LiveCheckpoints())
	}
	// al2 belongs to a squashed instruction; the pipeline returns it.
	r.SquashUndo(al2, 11)
	r.CheckInvariants()
}

func TestERFreesAfterUnmapCompleteAndDrain(t *testing.T) {
	r := NewRenamer(params(PolicyER))
	a := isa.IntReg(8)
	p1, _ := r.AllocDest(a, 0) // producer
	op := r.LookupSrc(a)       // consumer
	free0 := r.FreeCount(false)

	r.WriteResult(p1, 1_000_000_000_000, 5) // wide value; ER does not care
	if r.FreeCount(false) != free0 {
		t.Error("ER freed while still mapped")
	}
	// Next writer unmaps it...
	w, _ := r.AllocDest(a, 10)
	if r.FreeCount(false) != free0-1 {
		t.Error("ER freed while a reader is outstanding")
	}
	// ...and the last reader drains: freed without waiting for commit.
	r.ReleaseRead(op, 20, true)
	if r.FreeCount(false) != free0 {
		t.Error("ER did not free after unmap+complete+drain")
	}
	// Two early frees: the displaced initial mapping of a (freed the
	// moment p1's rename unmapped it — complete, no readers) and p1.
	if r.IntStats().EarlyFrees != 2 {
		t.Errorf("early frees = %d, want 2", r.IntStats().EarlyFrees)
	}
	// The writer's later commit release is a duplicate no-op.
	r.CommitRelease(w.Old, 30)
	if r.IntStats().DuplicateFrees == 0 {
		t.Error("commit after ER free should count as duplicate")
	}
	r.CheckInvariants()
}

func TestERRespectsCheckpoints(t *testing.T) {
	r := NewRenamer(params(PolicyER))
	a := isa.IntReg(8)
	p1, _ := r.AllocDest(a, 0)
	ck := r.TakeCheckpoint() // names p1's register
	r.WriteResult(p1, 99, 5)
	r.AllocDest(a, 10) // unmap
	free0 := r.FreeCount(false)
	// Not freed: the checkpoint still references it.
	r.ResolveCheckpoint(ck, 20)
	if r.FreeCount(false) != free0+1 {
		t.Error("ER did not free after checkpoint release")
	}
	r.CheckInvariants()
}

func TestPRIPlusERUsesBothRules(t *testing.T) {
	r := NewRenamer(params(PolicyPRIPlusER))
	// Narrow value: PRI path frees at retire.
	a := isa.IntReg(3)
	al, _ := r.AllocDest(a, 0)
	free0 := r.FreeCount(false)
	if out := r.WriteResult(al, 3, 5); !out.Freed {
		t.Error("PRI path did not free narrow value")
	}
	// Wide value: ER path frees after unmap.
	b := isa.IntReg(4)
	bl, _ := r.AllocDest(b, 10)
	r.WriteResult(bl, 1<<40, 15)
	r.AllocDest(b, 20)
	// Net: +1 PRI free of al, -1 bl alloc, +1 ER free of b's displaced
	// initial mapping, -1 b's second writer, +1 ER free of bl.
	if r.FreeCount(false) != free0+1 {
		t.Errorf("free count = %d, want %d", r.FreeCount(false), free0+1)
	}
	r.CheckInvariants()
}

func TestWriteResultAfterSquashIsNoop(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcLazy))
	a := isa.IntReg(5)
	ck := r.TakeCheckpoint()
	al, _ := r.AllocDest(a, 0)
	r.RestoreCheckpoint(ck, 4) // misprediction squashes the instruction
	r.SquashUndo(al, 5)
	out := r.WriteResult(al, 3, 10) // stale generation
	if out.Inlined || out.Freed {
		t.Errorf("stale WriteResult acted: %+v", out)
	}
	r.CheckInvariants()
}

func TestLifetimePhaseAccounting(t *testing.T) {
	r := NewRenamer(params(PolicyBase))
	a := isa.IntReg(3)
	al, _ := r.AllocDest(a, 100) // alloc at 100
	op := r.LookupSrc(a)
	r.WriteResult(al, 7, 130)    // write at 130
	r.ReleaseRead(op, 150, true) // last read at 150
	w, _ := r.AllocDest(a, 160)
	r.CommitRelease(w.Old, 200) // release at 200
	st := r.IntStats()
	if st.Released != 1 {
		t.Fatalf("released = %d", st.Released)
	}
	aw, wr, rr := st.AvgPhases()
	if aw != 30 || wr != 20 || rr != 50 {
		t.Errorf("phases = %v %v %v, want 30 20 50", aw, wr, rr)
	}
}

func TestOccupancyTracksAllocation(t *testing.T) {
	r := NewRenamer(params(PolicyPRIRcLazy))
	i0, _ := r.Occupancy()
	al, _ := r.AllocDest(isa.IntReg(1), 0)
	i1, _ := r.Occupancy()
	if i1 != i0+1 {
		t.Errorf("occupancy after alloc = %d", i1)
	}
	r.WriteResult(al, 1, 5) // narrow: early free
	i2, _ := r.Occupancy()
	if i2 != i0 {
		t.Errorf("occupancy after early free = %d", i2)
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]Policy{
		"base": PolicyBase, "er": PolicyER,
		"pri-rc-ckpt": PolicyPRIRcCkpt, "pri-rc-lazy": PolicyPRIRcLazy,
		"pri-ideal-ckpt": PolicyPRIIdealCkpt, "pri-ideal-lazy": PolicyPRIIdealLazy,
		"pri+er": PolicyPRIPlusER, "infpr": PolicyInfinite,
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("policy name = %q, want %q", p.Name(), name)
		}
	}
	if len(AllPolicies) != 7 {
		t.Errorf("AllPolicies has %d entries", len(AllPolicies))
	}
}

func TestValidatePanics(t *testing.T) {
	bad := []Params{
		{IntPRs: 16, FPPRs: 64, IntNarrowBits: 7},
		{IntPRs: 64, FPPRs: 16, IntNarrowBits: 7},
		{IntPRs: 64, FPPRs: 64, IntNarrowBits: 99},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad params %d did not panic", i)
				}
			}()
			cfg.Validate()
		}()
	}
}
