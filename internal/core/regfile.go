package core

import (
	"fmt"

	"prisim/internal/isa"
)

// PhysReg names a physical register within one class's file.
type PhysReg int32

// NoPR is the absent physical register.
const NoPR PhysReg = -1

// MapEntry is one RAM map table entry: either a pointer to a physical
// register (the conventional register addressing mode) or an inlined
// immediate value (the mode PRI adds).
type MapEntry struct {
	Inlined bool
	PR      PhysReg
	Value   uint64 // full sign-extended value when Inlined
}

// prState is the per-physical-register bookkeeping: the flags and counters
// of Sections 3.2-3.5 plus lifetime stamps for the Figure 1/8 analysis.
type prState struct {
	allocated bool
	gen       uint32 // bumped at every allocation; tags deallocations

	complete    bool // value written (retire)
	unmappedCur bool // no current map entry points here
	readers     int32
	ckptRefs    int32
	wantFree    bool // PRI decided to free; waiting on counters to drain

	arch isa.Reg // architected register this allocation serves

	allocCycle    uint64
	writeCycle    uint64
	lastReadCycle uint64
	written       bool
	everRead      bool
}

// LifetimeStats aggregates physical register lifetime, split into the three
// phases of the paper's Figure 1.
type LifetimeStats struct {
	Released       uint64
	AllocToWrite   uint64 // cycles summed over released registers
	WriteToRead    uint64
	ReadToRelease  uint64
	NeverWritten   uint64 // released without ever being written (squashed)
	EarlyFrees     uint64 // freed by PRI or ER before the commit rule
	InlinedResults uint64 // results written into the map as immediates
	WAWSuppressed  uint64 // narrow results not inlined: map already remapped
	DeferredFrees  uint64 // PRI frees delayed by reader/checkpoint counts
	DuplicateFrees uint64 // commit-time frees that found the register gone
}

// AvgPhases returns the average per-register cycles in each lifetime phase.
func (s *LifetimeStats) AvgPhases() (allocToWrite, writeToRead, readToRelease float64) {
	if s.Released == 0 {
		return 0, 0, 0
	}
	n := float64(s.Released)
	return float64(s.AllocToWrite) / n, float64(s.WriteToRead) / n, float64(s.ReadToRelease) / n
}

// regFile is one register class's physical file, map table, and free list.
type regFile struct {
	name     string
	nArch    int
	cfg      *Params
	mapTab   []MapEntry
	prs      []prState
	free     []PhysReg // FIFO free list
	freeHd   int
	nAlloc   int // currently allocated registers
	nWritten int // allocated registers holding a produced value
	// frozen suspends early-free side effects while a checkpoint restore
	// rewrites the map table; the restore ends with a full sweep.
	frozen bool
	Stats  LifetimeStats
}

func newRegFile(name string, nArch, nPhys int, cfg *Params) *regFile {
	rf := &regFile{
		name:   name,
		nArch:  nArch,
		cfg:    cfg,
		mapTab: make([]MapEntry, nArch),
		prs:    make([]prState, nPhys),
	}
	// Committed architected state occupies the first nArch physical
	// registers; the rest are free.
	for a := 0; a < nArch; a++ {
		rf.mapTab[a] = MapEntry{PR: PhysReg(a)}
		rf.prs[a] = prState{allocated: true, complete: true, written: true, arch: isa.Reg(a)}
	}
	rf.nAlloc = nArch
	rf.nWritten = nArch
	for p := nArch; p < nPhys; p++ {
		rf.free = append(rf.free, PhysReg(p))
	}
	return rf
}

// FreeCount returns the number of allocatable registers.
func (rf *regFile) FreeCount() int {
	if rf.cfg.Policy.Infinite {
		return 1 << 20
	}
	return len(rf.free) - rf.freeHd
}

// Allocated returns the current occupancy (allocated registers).
func (rf *regFile) Allocated() int { return rf.nAlloc }

func (rf *regFile) popFree() (PhysReg, bool) {
	if rf.freeHd < len(rf.free) {
		pr := rf.free[rf.freeHd]
		rf.freeHd++
		// Compact once the consumed prefix dominates.
		if rf.freeHd > 64 && rf.freeHd*2 > len(rf.free) {
			rf.free = append(rf.free[:0], rf.free[rf.freeHd:]...)
			rf.freeHd = 0
		}
		return pr, true
	}
	if rf.cfg.Policy.Infinite {
		rf.prs = append(rf.prs, prState{})
		return PhysReg(len(rf.prs) - 1), true
	}
	return NoPR, false
}

func (rf *regFile) pushFree(pr PhysReg) {
	rf.free = append(rf.free, pr)
}

// allocate takes a register off the free list for architected register a.
func (rf *regFile) allocate(a isa.Reg, now uint64) (PhysReg, uint32, bool) {
	pr, ok := rf.popFree()
	if !ok {
		return NoPR, 0, false
	}
	st := &rf.prs[pr]
	st.allocated = true
	st.gen++
	st.complete = false
	st.unmappedCur = false
	st.readers = 0
	st.ckptRefs = 0 // checkpoints never reference a free register
	st.wantFree = false
	st.arch = a
	st.allocCycle = now
	st.written = false
	st.everRead = false
	rf.nAlloc++
	return pr, st.gen, true
}

// release returns pr to the free list, recording lifetime statistics. The
// generation tag makes duplicate deallocation a no-op, as required by the
// paper's free-list manager (Section 3.2).
func (rf *regFile) release(pr PhysReg, gen uint32, now uint64) bool {
	st := &rf.prs[pr]
	if !st.allocated || st.gen != gen {
		rf.Stats.DuplicateFrees++
		return false
	}
	if st.ckptRefs > 0 {
		panic(fmt.Sprintf("core: %s p%d released while checkpoints reference it", rf.name, pr))
	}
	st.allocated = false
	st.wantFree = false
	rf.nAlloc--
	if st.written {
		rf.nWritten--
	}
	rf.pushFree(pr)

	rf.Stats.Released++
	if !st.written {
		rf.Stats.NeverWritten++
		rf.Stats.AllocToWrite += now - st.allocCycle
		return true
	}
	write := st.writeCycle
	if write < st.allocCycle {
		write = st.allocCycle
	}
	lastRead := write
	if st.everRead && st.lastReadCycle > write {
		lastRead = st.lastReadCycle
	}
	end := now
	if end < lastRead {
		end = lastRead
	}
	rf.Stats.AllocToWrite += write - st.allocCycle
	rf.Stats.WriteToRead += lastRead - write
	rf.Stats.ReadToRelease += end - lastRead
	return true
}

// maybeFree completes a deferred early free once every guard has drained.
func (rf *regFile) maybeFree(pr PhysReg, now uint64) {
	st := &rf.prs[pr]
	if rf.frozen || !st.allocated || !st.wantFree {
		return
	}
	if st.readers > 0 || st.ckptRefs > 0 || !st.unmappedCur {
		return
	}
	rf.Stats.EarlyFrees++
	rf.release(pr, st.gen, now)
}

// maybeERFree applies the early-release rule: complete ∧ unmapped everywhere
// ∧ no readers.
func (rf *regFile) maybeERFree(pr PhysReg, now uint64) {
	st := &rf.prs[pr]
	if rf.frozen || !st.allocated || !st.complete || !st.unmappedCur {
		return
	}
	if st.readers > 0 || st.ckptRefs > 0 {
		return
	}
	rf.Stats.EarlyFrees++
	rf.release(pr, st.gen, now)
}

func (rf *regFile) decReader(pr PhysReg, now uint64) {
	st := &rf.prs[pr]
	if st.readers <= 0 {
		panic(fmt.Sprintf("core: %s p%d reader underflow", rf.name, pr))
	}
	st.readers--
	if st.readers == 0 && st.allocated {
		rf.maybeFree(pr, now)
		if rf.cfg.Policy.ER {
			rf.maybeERFree(pr, now)
		}
	}
}

func (rf *regFile) decCkptRef(pr PhysReg, now uint64) {
	st := &rf.prs[pr]
	if st.ckptRefs <= 0 {
		panic(fmt.Sprintf("core: %s p%d ckpt ref underflow", rf.name, pr))
	}
	st.ckptRefs--
	if st.ckptRefs == 0 && st.allocated {
		rf.maybeFree(pr, now)
		if rf.cfg.Policy.ER {
			rf.maybeERFree(pr, now)
		}
	}
}

// recomputeUnmapped rebuilds the unmappedCur flags after a checkpoint
// restore rewrote the whole map table.
func (rf *regFile) recomputeUnmapped(now uint64) {
	for p := range rf.prs {
		st := &rf.prs[p]
		if st.allocated {
			st.unmappedCur = true
		}
	}
	for a := range rf.mapTab {
		e := rf.mapTab[a]
		if !e.Inlined && e.PR != NoPR {
			st := &rf.prs[e.PR]
			st.unmappedCur = false
			// A restored mapping cancels any pending inline free: the
			// register is architecturally visible again.
			st.wantFree = false
		}
	}
	for p := range rf.prs {
		st := &rf.prs[p]
		if !st.allocated || !st.unmappedCur {
			continue
		}
		rf.maybeFree(PhysReg(p), now)
		if rf.cfg.Policy.ER {
			rf.maybeERFree(PhysReg(p), now)
		}
	}
}
