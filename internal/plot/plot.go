// Package plot renders the reproduction's figures as standalone SVG files,
// mirroring the paper's presentation: grouped bars for the scheme speedups
// (Figures 10/12), stacked bars for register lifetime phases (Figures 1/8),
// and line series for the CDFs and sensitivity sweeps (Figures 2/9).
// Everything is generated with the standard library only.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of y-values across the shared x categories.
type Series struct {
	Name   string
	Values []float64
}

// Chart describes one figure.
type Chart struct {
	Title      string
	YLabel     string
	Categories []string // x-axis labels (benchmarks, bit counts, PR sizes)
	Series     []Series
	// Stacked renders series segments on top of each other (lifetime
	// phases) instead of side by side.
	Stacked bool
	// Lines renders the series as polylines instead of bars.
	Lines bool
	// YMin forces the y-axis origin (bar charts of speedups read better
	// anchored at 1.0). NaN means auto.
	YMin float64
}

// Geometry constants: fixed-size figures keep the generator simple and the
// output diffable.
const (
	width   = 960
	height  = 420
	marginL = 70
	marginR = 160
	marginT = 50
	marginB = 90
	plotW   = width - marginL - marginR
	plotH   = height - marginT - marginB
)

// palette is color-blind-safe (Okabe-Ito).
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#D55E00",
	"#CC79A7", "#56B4E9", "#F0E442", "#000000",
}

// SVG renders the chart.
func (c *Chart) SVG() string {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	lo, hi := c.bounds()
	y := func(v float64) float64 {
		if hi == lo {
			return float64(marginT + plotH)
		}
		return float64(marginT) + float64(plotH)*(1-(v-lo)/(hi-lo))
	}

	c.axes(&sb, lo, hi, y)
	if c.Lines {
		c.lines(&sb, y)
	} else {
		c.bars(&sb, lo, y)
	}
	c.legend(&sb)
	sb.WriteString("</svg>\n")
	return sb.String()
}

func (c *Chart) bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	if c.Stacked {
		for i := range c.Categories {
			sum := 0.0
			for _, s := range c.Series {
				if i < len(s.Values) {
					sum += s.Values[i]
				}
			}
			hi = math.Max(hi, sum)
		}
		lo = 0
	} else {
		for _, s := range c.Series {
			for _, v := range s.Values {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
	}
	if !math.IsNaN(c.YMin) {
		lo = c.YMin
	} else if !c.Lines {
		lo = math.Min(lo, 0)
	}
	if math.IsInf(lo, 1) || math.IsInf(hi, -1) {
		return 0, 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	// Headroom above the tallest value.
	hi += (hi - lo) * 0.05
	return lo, hi
}

func (c *Chart) axes(sb *strings.Builder, lo, hi float64, y func(float64) float64) {
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	// Five horizontal gridlines with tick labels.
	for i := 0; i <= 5; i++ {
		v := lo + (hi-lo)*float64(i)/5
		yy := y(v)
		fmt.Fprintf(sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, yy, marginL+plotW, yy)
		fmt.Fprintf(sb, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, yy+4, trimFloat(v))
	}
	fmt.Fprintf(sb, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))
	// Category labels, rotated for readability.
	n := len(c.Categories)
	for i, cat := range c.Categories {
		x := float64(marginL) + float64(plotW)*(float64(i)+0.5)/float64(n)
		fmt.Fprintf(sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="end" transform="rotate(-45 %.1f %d)">%s</text>`+"\n",
			x, marginT+plotH+14, x, marginT+plotH+14, esc(cat))
	}
}

func (c *Chart) bars(sb *strings.Builder, lo float64, y func(float64) float64) {
	n := len(c.Categories)
	if n == 0 {
		return
	}
	slot := float64(plotW) / float64(n)
	if c.Stacked {
		barW := slot * 0.6
		for i := 0; i < n; i++ {
			x := float64(marginL) + slot*float64(i) + (slot-barW)/2
			acc := lo
			for si, s := range c.Series {
				if i >= len(s.Values) {
					continue
				}
				top := y(acc + s.Values[i])
				bot := y(acc)
				fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, top, barW, bot-top, palette[si%len(palette)])
				acc += s.Values[i]
			}
		}
		return
	}
	group := slot * 0.8
	barW := group / float64(len(c.Series))
	for si, s := range c.Series {
		for i, v := range s.Values {
			if i >= n {
				break
			}
			x := float64(marginL) + slot*float64(i) + (slot-group)/2 + barW*float64(si)
			top := y(v)
			base := y(lo)
			if top > base {
				top, base = base, top
			}
			fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, top, barW, base-top, palette[si%len(palette)])
		}
	}
}

func (c *Chart) lines(sb *strings.Builder, y func(float64) float64) {
	n := len(c.Categories)
	if n == 0 {
		return
	}
	for si, s := range c.Series {
		var pts []string
		for i, v := range s.Values {
			if i >= n {
				break
			}
			x := float64(marginL) + float64(plotW)*(float64(i)+0.5)/float64(n)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y(v)))
		}
		fmt.Fprintf(sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), palette[si%len(palette)])
	}
}

func (c *Chart) legend(sb *strings.Builder) {
	x := marginL + plotW + 12
	for si, s := range c.Series {
		yy := marginT + 18*si
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			x, yy, palette[si%len(palette)])
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			x+16, yy+10, esc(s.Name))
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
