package plot

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"prisim/internal/stats"
)

// FromTable converts one of the harness's rendered tables into a chart: the
// first column becomes the x categories and every other column a series.
// Cells may carry % suffixes. skipRows names category rows to drop (e.g.
// the "average" row when plotting per-benchmark bars).
func FromTable(t *stats.Table, yLabel string, lines, stacked bool, skipRows ...string) (*Chart, error) {
	if len(t.Columns) < 2 {
		return nil, fmt.Errorf("plot: table %q has no data columns", t.Title)
	}
	skip := make(map[string]bool, len(skipRows))
	for _, s := range skipRows {
		skip[s] = true
	}
	c := &Chart{
		Title:   t.Title,
		YLabel:  yLabel,
		Lines:   lines,
		Stacked: stacked,
		YMin:    math.NaN(),
	}
	for _, col := range t.Columns[1:] {
		c.Series = append(c.Series, Series{Name: col})
	}
	for _, row := range t.Rows {
		if len(row) == 0 || skip[row[0]] {
			continue
		}
		c.Categories = append(c.Categories, row[0])
		for i := range c.Series {
			v := 0.0
			if i+1 < len(row) {
				parsed, err := parseCell(row[i+1])
				if err != nil {
					return nil, fmt.Errorf("plot: table %q row %q col %q: %w",
						t.Title, row[0], t.Columns[i+1], err)
				}
				v = parsed
			}
			c.Series[i].Values = append(c.Series[i].Values, v)
		}
	}
	return c, nil
}

func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "%"))
	return strconv.ParseFloat(s, 64)
}
