package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"prisim/internal/stats"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGroupedBars(t *testing.T) {
	c := &Chart{
		Title:      "speedups",
		YLabel:     "IPC / base",
		Categories: []string{"a", "b", "c"},
		Series: []Series{
			{Name: "ER", Values: []float64{1.01, 1.05, 1.10}},
			{Name: "PRI", Values: []float64{1.02, 1.03, 1.20}},
		},
		YMin: 1.0,
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if !strings.Contains(svg, "speedups") || !strings.Contains(svg, "ER") {
		t.Error("missing title or legend")
	}
	if strings.Count(svg, "<rect") < 7 { // background + legend + 6 bars
		t.Errorf("too few rects:\n%s", svg)
	}
}

func TestStackedBars(t *testing.T) {
	c := &Chart{
		Title:      "lifetime",
		Categories: []string{"x", "y"},
		Stacked:    true,
		Series: []Series{
			{Name: "p1", Values: []float64{5, 7}},
			{Name: "p2", Values: []float64{3, 2}},
		},
		YMin: math.NaN(),
	}
	wellFormed(t, c.SVG())
}

func TestLineChart(t *testing.T) {
	c := &Chart{
		Title:      "cdf",
		Categories: []string{"1", "2", "4", "8"},
		Lines:      true,
		Series:     []Series{{Name: "bench", Values: []float64{0.1, 0.4, 0.8, 1.0}}},
		YMin:       math.NaN(),
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if !strings.Contains(svg, "<polyline") {
		t.Error("no polyline in line chart")
	}
}

func TestEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty", YMin: math.NaN()}
	wellFormed(t, c.SVG())
}

func TestEscaping(t *testing.T) {
	c := &Chart{Title: `a<b>&"c"`, Categories: []string{"x<y"},
		Series: []Series{{Name: "s&t", Values: []float64{1}}}, YMin: math.NaN()}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Contains(svg, "a<b>") {
		t.Error("title not escaped")
	}
}

func TestFromTable(t *testing.T) {
	tb := &stats.Table{
		Title:   "demo",
		Columns: []string{"bench", "ER", "PRI"},
	}
	tb.AddRow("gzip", "1.01", "1.05")
	tb.AddRow("mcf", "1.10", "1.20")
	tb.AddRow("average", "1.05", "1.12")
	c, err := FromTable(tb, "speedup", false, false, "average")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Categories) != 2 || len(c.Series) != 2 {
		t.Fatalf("shape: %d cats, %d series", len(c.Categories), len(c.Series))
	}
	if c.Series[1].Values[1] != 1.20 {
		t.Errorf("parsed %v", c.Series[1].Values)
	}
	wellFormed(t, c.SVG())
}

func TestFromTablePercentCells(t *testing.T) {
	tb := &stats.Table{Title: "pct", Columns: []string{"bench", "frac"}}
	tb.AddRow("a", "61.2%")
	c, err := FromTable(tb, "%", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Series[0].Values[0] != 61.2 {
		t.Errorf("parsed %v", c.Series[0].Values[0])
	}
}

func TestFromTableErrors(t *testing.T) {
	tb := &stats.Table{Title: "bad", Columns: []string{"bench", "v"}}
	tb.AddRow("a", "not-a-number")
	if _, err := FromTable(tb, "", false, false); err == nil {
		t.Error("bad cell accepted")
	}
	empty := &stats.Table{Title: "none", Columns: []string{"bench"}}
	if _, err := FromTable(empty, "", false, false); err == nil {
		t.Error("no-data table accepted")
	}
}
